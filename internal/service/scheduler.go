package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/nyu-secml/almost/internal/core"
)

// SchedulerConfig sizes a Scheduler. Zero values pick sane defaults.
type SchedulerConfig struct {
	// PoolSize is the shared engine-worker slot count (default 4).
	PoolSize int
	// QueueLimit caps jobs that are accepted but not yet finished; a
	// submit past the cap is rejected with ErrQueueFull (default 256).
	QueueLimit int
	// EventBuffer caps the per-job replay buffer; older events age out
	// and watchers that fell that far behind see a gap event
	// (default 1024).
	EventBuffer int
	// HistoryLimit caps retained terminal jobs. Once more than this many
	// jobs have finished, the oldest terminal jobs are evicted — status,
	// replay buffer, and result — so a long-running daemon's memory stays
	// bounded no matter how many jobs flow through it. Live jobs are
	// never evicted (default 512).
	HistoryLimit int
}

func (c *SchedulerConfig) fill() {
	if c.PoolSize <= 0 {
		c.PoolSize = 4
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 256
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = 1024
	}
	if c.HistoryLimit <= 0 {
		c.HistoryLimit = 512
	}
}

// Submission errors.
var (
	// ErrQueueFull rejects a submit when the bounded queue is at its
	// limit — backpressure instead of unbounded memory.
	ErrQueueFull = errors.New("job queue is full")
	// ErrClosed rejects a submit after Close.
	ErrClosed = errors.New("scheduler is closed")
	// ErrNoSuchJob reports an unknown job ID.
	ErrNoSuchJob = errors.New("no such job")
)

// Scheduler owns the job table: it accepts specs into a bounded queue,
// runs each job on the shared Pool with its clamped Parallelism budget,
// buffers every job's event stream for replay, and keeps the counters
// /stats reports. All state lives behind one mutex; job execution
// happens on per-job goroutines that only touch the table through the
// small locked helpers below.
type Scheduler struct {
	ctx  context.Context
	cfg  SchedulerConfig
	pool *Pool

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // submission order; the only way the table is iterated
	nextID int
	closed bool

	accepted  int64
	rejected  int64
	canceled  int64
	completed int64
	failed    int64

	wg sync.WaitGroup
}

// job is the scheduler-internal record of one submission. Mutable
// fields are guarded by Scheduler.mu.
type job struct {
	id     string
	spec   JobSpec
	cancel context.CancelFunc

	state     JobState
	phase     core.Phase
	granted   int
	errText   string
	result    *JobResult
	submitted time.Time
	finished  *time.Time

	// Event replay buffer: events holds seqs [firstSeq, nextSeq);
	// notify is closed and replaced on every append.
	events   []StreamEvent
	firstSeq int
	nextSeq  int
	dropped  int
	notify   chan struct{}

	timedOut  bool // the job's own timeout fired
	requested bool // Cancel was called explicitly
}

// NewScheduler creates a scheduler whose jobs derive from ctx: cancel
// it (server shutdown) and every queued and running job cancels too.
// Job lifetimes must not be tied to any single HTTP request, which is
// why the base context is taken here and not per call.
func NewScheduler(ctx context.Context, cfg SchedulerConfig) *Scheduler {
	cfg.fill()
	return &Scheduler{
		ctx:  ctx,
		cfg:  cfg,
		pool: NewPool(cfg.PoolSize),
		jobs: make(map[string]*job),
	}
}

// Pool exposes the shared slot pool (stats and tests).
func (s *Scheduler) Pool() *Pool { return s.pool }

// Config returns the scheduler's configuration with defaults filled in.
func (s *Scheduler) Config() SchedulerConfig { return s.cfg }

// Submit validates the spec, admits it into the bounded queue, and
// starts its runner goroutine. It returns the job ID immediately — all
// further interaction is by ID.
func (s *Scheduler) Submit(spec JobSpec) (string, error) {
	if err := spec.Validate(); err != nil {
		s.mu.Lock()
		s.rejected++
		s.mu.Unlock()
		return "", err
	}
	s.mu.Lock()
	if s.closed {
		s.rejected++
		s.mu.Unlock()
		return "", ErrClosed
	}
	if s.liveLocked() >= s.cfg.QueueLimit {
		s.rejected++
		s.mu.Unlock()
		return "", ErrQueueFull
	}
	s.nextID++
	id := fmt.Sprintf("job-%06d", s.nextID)
	ctx, cancel := context.WithCancel(s.ctx)
	j := &job{
		id:        id,
		spec:      spec,
		cancel:    cancel,
		state:     StateQueued,
		submitted: time.Now().UTC(),
		notify:    make(chan struct{}),
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.accepted++
	s.appendLocked(j, StreamEvent{Type: StreamStateChange, State: StateQueued})
	s.wg.Add(1)
	s.mu.Unlock()
	go s.run(ctx, j)
	return id, nil
}

// liveLocked counts jobs that still hold queue capacity.
func (s *Scheduler) liveLocked() int {
	n := 0
	for _, id := range s.order {
		if !s.jobs[id].state.Terminal() {
			n++
		}
	}
	return n
}

// run is the per-job goroutine: wait for pool slots, execute, finish.
func (s *Scheduler) run(ctx context.Context, j *job) {
	defer s.wg.Done()
	defer j.cancel()
	if j.spec.Timeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, time.Duration(j.spec.Timeout))
		defer tcancel()
	}
	s.transition(j, StateWaiting, 0)
	granted, release, err := s.pool.Acquire(ctx, j.spec.Parallelism)
	if err != nil {
		s.finish(ctx, j, nil, err)
		return
	}
	defer release()
	s.transition(j, StateRunning, granted)
	res, err := RunSpec(ctx, j.spec, granted, func(ev core.Event) { s.progress(j, ev) })
	release() // hand slots back before bookkeeping so successors start sooner
	s.finish(ctx, j, res, err)
}

// Cancel cancels a job wherever it is in its lifecycle: queued and
// waiting jobs finish as canceled without ever taking pool slots,
// running jobs stop at the library's next context checkpoint.
func (s *Scheduler) Cancel(id string) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if ok && !j.state.Terminal() {
		j.requested = true
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchJob, id)
	}
	j.cancel()
	return nil
}

// transition moves a job to a non-terminal state and streams the change.
func (s *Scheduler) transition(j *job, state JobState, granted int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = state
	if granted > 0 {
		j.granted = granted
	}
	s.appendLocked(j, StreamEvent{Type: StreamStateChange, State: state})
}

// progress records one library event on the job's stream.
func (s *Scheduler) progress(j *job, ev core.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j.phase = ev.Phase
	e := ev
	s.appendLocked(j, StreamEvent{Type: StreamProgress, Event: &e})
}

// finish records the job's terminal state, result, and counters, and
// emits the stream's terminal event.
func (s *Scheduler) finish(ctx context.Context, j *job, res *JobResult, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	now := time.Now().UTC()
	j.finished = &now
	switch {
	case err == nil:
		j.state = StateDone
		j.result = res
		s.completed++
		s.appendLocked(j, StreamEvent{Type: StreamResult, Result: res})
	case canceledErr(err):
		j.state = StateCanceled
		j.errText = cancelCause(ctx, j)
		s.canceled++
		s.appendLocked(j, StreamEvent{Type: StreamError, State: StateCanceled, Error: j.errText})
	default:
		j.state = StateFailed
		j.errText = err.Error()
		s.failed++
		s.appendLocked(j, StreamEvent{Type: StreamError, State: StateFailed, Error: j.errText})
	}
	s.evictLocked()
}

// canceledErr reports whether err means "stopped on purpose" rather
// than "broke": a context cancellation/timeout surfaced through the
// error chain. Only the chain is consulted — a job that genuinely
// fails just as the server shuts down (or as its timeout fires) must
// stay failed with its real error preserved, not be relabeled
// canceled because some context happens to be done.
func canceledErr(err error) bool {
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, core.ErrCanceled)
}

// evictLocked drops the oldest terminal jobs past the history cap so
// the jobs table, event buffers, and result payloads (whole netlists)
// cannot grow without bound in a long-running daemon. Called with s.mu
// held whenever a job turns terminal. Lifetime counters are unaffected;
// an evicted ID simply reads as ErrNoSuchJob afterwards.
func (s *Scheduler) evictLocked() {
	terminal := 0
	for _, id := range s.order {
		if s.jobs[id].state.Terminal() {
			terminal++
		}
	}
	over := terminal - s.cfg.HistoryLimit
	if over <= 0 {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		if over > 0 && s.jobs[id].state.Terminal() {
			delete(s.jobs, id)
			over--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// cancelCause names why a job was canceled.
func cancelCause(ctx context.Context, j *job) string {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return "timed out after " + time.Duration(j.spec.Timeout).String()
	}
	if j.requested {
		return "canceled by client"
	}
	return "canceled"
}

// appendLocked pushes one event onto j's replay buffer, ages out the
// overflow, and wakes every watcher. Called with s.mu held.
func (s *Scheduler) appendLocked(j *job, ev StreamEvent) {
	ev.Seq = j.nextSeq
	j.nextSeq++
	j.events = append(j.events, ev)
	if over := len(j.events) - s.cfg.EventBuffer; over > 0 {
		j.events = append([]StreamEvent(nil), j.events[over:]...)
		j.firstSeq += over
		j.dropped += over
	}
	close(j.notify)
	j.notify = make(chan struct{})
}

// EventsSince returns the job's buffered events with sequence >= from,
// plus a channel that is closed on the next append — the building block
// of a watch loop:
//
//	for {
//	    evs, wake, _ := s.EventsSince(id, cursor)
//	    ... write evs, stop on a terminal one, cursor = last seq + 1 ...
//	    select { case <-wake: case <-ctx.Done(): return }
//	}
//
// If from predates the replay buffer, the slice leads with a gap event
// so the loss is explicit, never silent.
func (s *Scheduler) EventsSince(id string, from int) ([]StreamEvent, <-chan struct{}, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %s", ErrNoSuchJob, id)
	}
	if from < 0 {
		from = 0
	}
	// A cursor past the end of the stream (a client resuming with a
	// bogus ?from) means "nothing new yet", never a slice past the
	// buffer.
	if from > j.nextSeq {
		from = j.nextSeq
	}
	var out []StreamEvent
	if from < j.firstSeq {
		out = append(out, StreamEvent{Seq: from, Type: StreamGap, Dropped: j.firstSeq - from})
		from = j.firstSeq
	}
	out = append(out, j.events[from-j.firstSeq:]...)
	return out, j.notify, nil
}

// statusLocked renders a job's wire status. Called with s.mu held.
func (s *Scheduler) statusLocked(j *job) JobStatus {
	return JobStatus{
		ID:        j.id,
		Kind:      j.spec.Kind,
		State:     j.state,
		Phase:     j.phase,
		Granted:   j.granted,
		Events:    j.nextSeq,
		Dropped:   j.dropped,
		Error:     j.errText,
		Submitted: j.submitted,
		Finished:  j.finished,
	}
}

// Status returns a job's current wire status.
func (s *Scheduler) Status(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, fmt.Errorf("%w: %s", ErrNoSuchJob, id)
	}
	return s.statusLocked(j), nil
}

// Result returns a finished job's result alongside its status. The
// result pointer is nil unless the job is done.
func (s *Scheduler) Result(id string) (*JobResult, JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, JobStatus{}, fmt.Errorf("%w: %s", ErrNoSuchJob, id)
	}
	return j.result, s.statusLocked(j), nil
}

// Stats snapshots the scheduler: queue depth, pool occupancy, lifetime
// counters, and per-job statuses in submission order.
func (s *Scheduler) Stats(withJobs bool) Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		PoolSize:  s.pool.Capacity(),
		InFlight:  s.pool.InFlight(),
		Waiting:   s.pool.Waiting(),
		Accepted:  s.accepted,
		Rejected:  s.rejected,
		Canceled:  s.canceled,
		Completed: s.completed,
		Failed:    s.failed,
	}
	for _, id := range s.order {
		j := s.jobs[id]
		switch j.state {
		case StateQueued, StateWaiting:
			st.QueueDepth++
		case StateRunning:
			st.Running++
		}
		if withJobs {
			st.Jobs = append(st.Jobs, s.statusLocked(j))
		}
	}
	return st
}

// Close stops accepting submissions, cancels every live job, and waits
// for all runner goroutines to drain — after it returns nothing the
// scheduler started is still running.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	// Snapshot the cancel funcs under the lock: history eviction may
	// remove entries from s.jobs concurrently with this loop.
	cancels := make([]context.CancelFunc, 0, len(s.order))
	for _, id := range s.order {
		cancels = append(cancels, s.jobs[id].cancel)
	}
	s.mu.Unlock()
	for _, cancel := range cancels {
		cancel()
	}
	s.wg.Wait()
}
