package service

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func newTestScheduler(t *testing.T, cfg SchedulerConfig) *Scheduler {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	s := NewScheduler(ctx, cfg)
	t.Cleanup(func() { s.Close(); cancel() })
	return s
}

// waitTerminal polls a job to a terminal state.
func waitTerminal(t *testing.T, s *Scheduler, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st, err := s.Status(id)
		if err != nil {
			t.Fatalf("Status(%s): %v", id, err)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return JobStatus{}
}

// waitState polls until the job reports the wanted (or a terminal)
// state.
func waitState(t *testing.T, s *Scheduler, id string, want JobState) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st, err := s.Status(id)
		if err != nil {
			t.Fatalf("Status(%s): %v", id, err)
		}
		if st.State == want || st.State.Terminal() {
			if st.State != want {
				t.Fatalf("job %s reached %s while waiting for %s", id, st.State, want)
			}
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
}

func lockJobSpec(seed int64) JobSpec {
	return JobSpec{Kind: KindLock, Circuit: "c432", KeySize: 8, Seed: seed}
}

// TestSchedulerLockJob walks one cheap job through its whole lifecycle
// and checks the replay buffer tells the same story: dense sequence
// numbers from the queued transition to the terminal result.
func TestSchedulerLockJob(t *testing.T) {
	s := newTestScheduler(t, SchedulerConfig{PoolSize: 2})
	id, err := s.Submit(lockJobSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, s, id)
	if st.State != StateDone {
		t.Fatalf("state = %s (%s), want done", st.State, st.Error)
	}
	res, _, err := s.Result(id)
	if err != nil || res == nil {
		t.Fatalf("Result: %v, res=%v", err, res)
	}
	if res.Key == "" || !strings.Contains(res.Netlist, "INPUT") {
		t.Fatalf("lock result incomplete: key %q, netlist %d bytes", res.Key, len(res.Netlist))
	}

	evs, _, err := s.EventsSince(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) < 3 { // queued, waiting, running, ... result
		t.Fatalf("only %d events buffered", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d — not dense", i, ev.Seq)
		}
	}
	if first := evs[0]; first.Type != StreamStateChange || first.State != StateQueued {
		t.Fatalf("first event = %+v, want queued state change", first)
	}
	last := evs[len(evs)-1]
	if last.Type != StreamResult || last.Result == nil {
		t.Fatalf("last event = %+v, want result", last)
	}
}

// TestSchedulerCancelQueued checks that a job canceled before it ever
// gets pool slots finishes as canceled without running.
func TestSchedulerCancelQueued(t *testing.T) {
	s := newTestScheduler(t, SchedulerConfig{PoolSize: 1})
	// Occupy the pool so followers queue.
	hog, err := s.Submit(JobSpec{Kind: KindHarden, Circuit: "c432", KeySize: 6,
		Seed: 3, Effort: EffortSmoke, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, hog, StateRunning)
	id, err := s.Submit(lockJobSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(id); err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, s, id)
	if st.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", st.State)
	}
	if st.Granted != 0 {
		t.Fatalf("canceled-in-queue job was granted %d slots", st.Granted)
	}
	if !strings.Contains(st.Error, "canceled by client") {
		t.Fatalf("error = %q, want the client-cancel cause", st.Error)
	}
	if err := s.Cancel(hog); err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, s, hog); st.State != StateCanceled {
		t.Fatalf("hog state = %s, want canceled", st.State)
	}
}

// TestSchedulerTimeout checks the spec's Timeout: the job is cut off at
// its deadline and lands in canceled with a timeout cause.
func TestSchedulerTimeout(t *testing.T) {
	s := newTestScheduler(t, SchedulerConfig{PoolSize: 1})
	id, err := s.Submit(JobSpec{Kind: KindHarden, Circuit: "c432", KeySize: 6,
		Seed: 5, Effort: EffortSmoke, Timeout: Duration(time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, s, id)
	if st.State != StateCanceled {
		t.Fatalf("state = %s (%s), want canceled", st.State, st.Error)
	}
	if !strings.Contains(st.Error, "timed out") {
		t.Fatalf("error = %q, want a timeout cause", st.Error)
	}
}

// TestSchedulerQueueLimit checks the bounded queue's backpressure and
// that rejected submissions are counted.
func TestSchedulerQueueLimit(t *testing.T) {
	s := newTestScheduler(t, SchedulerConfig{PoolSize: 1, QueueLimit: 2})
	a, err := s.Submit(JobSpec{Kind: KindHarden, Circuit: "c432", KeySize: 6,
		Seed: 2, Effort: EffortSmoke})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, a, StateRunning)
	b, err := s.Submit(lockJobSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(lockJobSpec(3)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: want ErrQueueFull, got %v", err)
	}
	if _, err := s.Submit(JobSpec{Kind: "nope"}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("bad spec: want ErrBadSpec, got %v", err)
	}
	stats := s.Stats(false)
	if stats.Rejected != 2 {
		t.Fatalf("Rejected = %d, want 2", stats.Rejected)
	}
	if stats.Accepted != 2 {
		t.Fatalf("Accepted = %d, want 2", stats.Accepted)
	}
	_ = s.Cancel(a)
	waitTerminal(t, s, a)
	waitTerminal(t, s, b) // the lock job drains once the hog is gone
	// Capacity freed: submits are accepted again.
	c, err := s.Submit(lockJobSpec(4))
	if err != nil {
		t.Fatalf("submit after drain: %v", err)
	}
	waitTerminal(t, s, c)
}

// TestSchedulerEventGap checks the bounded replay buffer: a watcher
// reading from 0 after overflow gets an explicit gap event, never a
// silent hole.
func TestSchedulerEventGap(t *testing.T) {
	s := newTestScheduler(t, SchedulerConfig{PoolSize: 1, EventBuffer: 4})
	id, err := s.Submit(JobSpec{Kind: KindHarden, Circuit: "c432", KeySize: 6,
		Seed: 4, Effort: EffortSmoke})
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, s, id)
	if st.State != StateDone {
		t.Fatalf("state = %s (%s), want done", st.State, st.Error)
	}
	if st.Dropped == 0 {
		t.Fatalf("smoke harden emitted %d events but none aged out of a 4-slot buffer", st.Events)
	}
	evs, _, err := s.EventsSince(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	if evs[0].Type != StreamGap || evs[0].Dropped != st.Dropped {
		t.Fatalf("first replayed event = %+v, want a gap of %d", evs[0], st.Dropped)
	}
	if last := evs[len(evs)-1]; last.Type != StreamResult {
		t.Fatalf("last replayed event = %+v, want the result", last)
	}
}

// TestSchedulerEventsSinceBeyondEnd is a regression test: a resume
// cursor past the end of the stream (any remote client can send
// ?from=999999) must clamp to "nothing new yet", not panic slicing
// past the buffer.
func TestSchedulerEventsSinceBeyondEnd(t *testing.T) {
	s := newTestScheduler(t, SchedulerConfig{PoolSize: 1})
	id, err := s.Submit(lockJobSpec(11))
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, s, id)
	if st.State != StateDone {
		t.Fatalf("state = %s (%s), want done", st.State, st.Error)
	}
	evs, wake, err := s.EventsSince(id, 999999)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 0 {
		t.Fatalf("cursor beyond the end returned %d events: %+v", len(evs), evs)
	}
	if wake == nil {
		t.Fatal("no notify channel returned")
	}
	// Resuming exactly at the end is the normal tail-follow case and
	// must also be empty without error.
	if evs, _, err = s.EventsSince(id, st.Events); err != nil || len(evs) != 0 {
		t.Fatalf("cursor at the end: %d events, %v", len(evs), err)
	}
}

// TestSchedulerHistoryEviction checks the bounded terminal-job history:
// finished jobs past HistoryLimit are evicted oldest-first (the ID
// reads as ErrNoSuchJob), recent ones keep full status and result, and
// lifetime counters survive eviction.
func TestSchedulerHistoryEviction(t *testing.T) {
	const limit = 2
	s := newTestScheduler(t, SchedulerConfig{PoolSize: 1, HistoryLimit: limit})
	var ids []string
	for seed := int64(1); seed <= 5; seed++ {
		id, err := s.Submit(lockJobSpec(seed))
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, s, id)
		ids = append(ids, id)
	}
	for _, id := range ids[:len(ids)-limit] {
		if _, err := s.Status(id); !errors.Is(err, ErrNoSuchJob) {
			t.Fatalf("evicted job %s: want ErrNoSuchJob, got %v", id, err)
		}
	}
	for _, id := range ids[len(ids)-limit:] {
		st, err := s.Status(id)
		if err != nil || st.State != StateDone {
			t.Fatalf("retained job %s: %+v, %v", id, st, err)
		}
		if res, _, err := s.Result(id); err != nil || res == nil {
			t.Fatalf("retained job %s lost its result: %v", id, err)
		}
	}
	stats := s.Stats(true)
	if stats.Completed != int64(len(ids)) {
		t.Fatalf("Completed = %d after eviction, want %d", stats.Completed, len(ids))
	}
	if len(stats.Jobs) != limit {
		t.Fatalf("stats lists %d jobs, want the %d retained", len(stats.Jobs), limit)
	}
}

// TestSchedulerFailurePreservedDuringShutdown pins the terminal-state
// classification: a job that genuinely fails while its context is
// already canceled (server shutdown racing a real error) must be
// recorded as failed with the real error text, not relabeled canceled.
func TestSchedulerFailurePreservedDuringShutdown(t *testing.T) {
	s := newTestScheduler(t, SchedulerConfig{PoolSize: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // shutdown already in flight
	j := &job{id: "job-x", state: StateRunning, notify: make(chan struct{}), cancel: func() {}}
	s.mu.Lock()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()
	realErr := errors.New("parsing netlist: unexpected token")
	s.finish(ctx, j, nil, realErr)
	st, err := s.Status(j.id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed {
		t.Fatalf("state = %s, want failed", st.State)
	}
	if st.Error != realErr.Error() {
		t.Fatalf("error = %q, want the real failure %q", st.Error, realErr)
	}
	if stats := s.Stats(false); stats.Failed != 1 || stats.Canceled != 0 {
		t.Fatalf("counters failed=%d canceled=%d, want 1/0", stats.Failed, stats.Canceled)
	}
}

// TestSchedulerFairBudgets is the satellite scenario end to end: jobs
// with unequal Parallelism budgets share a small pool; every job
// finishes (no starvation) and the pool never over-grants (checked by
// the pool's own invariant via stats sampling).
func TestSchedulerFairBudgets(t *testing.T) {
	const pool = 3
	s := newTestScheduler(t, SchedulerConfig{PoolSize: pool})
	budgets := []int{1, 3, 2, 1, 5, 1, 2, 3, 1, 2}
	ids := make([]string, len(budgets))
	for i, b := range budgets {
		id, err := s.Submit(JobSpec{Kind: KindLock, Circuit: "c432",
			KeySize: 4 + i, Seed: int64(i + 1), Parallelism: b})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, id := range ids {
			waitTerminal(t, s, id)
		}
	}()
	for {
		select {
		case <-done:
			for _, id := range ids {
				st, _ := s.Status(id)
				if st.State != StateDone {
					t.Fatalf("job %s = %s (%s), want done", id, st.State, st.Error)
				}
				if st.Granted < 1 || st.Granted > pool {
					t.Fatalf("job %s granted %d slots on a pool of %d", id, st.Granted, pool)
				}
			}
			return
		default:
			if in := s.Pool().InFlight(); in > pool {
				t.Fatalf("aggregate in-flight %d exceeds pool %d", in, pool)
			}
			time.Sleep(500 * time.Microsecond)
		}
	}
}
