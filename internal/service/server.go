package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// Server is the HTTP face of a Scheduler. The protocol is deliberately
// small and stdlib-only — JSON request/response bodies plus one
// line-delimited JSON (NDJSON) streaming endpoint:
//
//	POST /jobs               submit a JobSpec  -> {"id": "job-000001"}
//	GET  /jobs               all job statuses, submission order
//	GET  /jobs/{id}          one job's status
//	GET  /jobs/{id}/result   terminal result (202 while running)
//	POST /jobs/{id}/cancel   cancel wherever it is
//	GET  /jobs/{id}/events   NDJSON StreamEvent feed; ?from=N resumes
//	GET  /stats              queue/pool/counter snapshot (?jobs=1 adds per-job rows)
//	GET  /healthz            liveness
//
// Routing is by hand because the module targets Go 1.21 (no ServeMux
// method patterns).
type Server struct {
	sched *Scheduler
}

// NewServer wraps a scheduler in the wire protocol.
func NewServer(sched *Scheduler) *Server { return &Server{sched: sched} }

// errorResponse is the JSON body of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
}

// submitResponse is the body of a successful POST /jobs.
type submitResponse struct {
	ID string `json:"id"`
}

// resultResponse is the body of GET /jobs/{id}/result.
type resultResponse struct {
	Status JobStatus  `json:"status"`
	Result *JobResult `json:"result,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// httpError maps a service error to its status code.
func httpError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrBadSpec):
		code = http.StatusBadRequest
	case errors.Is(err, ErrNoSuchJob):
		code = http.StatusNotFound
	case errors.Is(err, ErrQueueFull):
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

func methodNotAllowed(w http.ResponseWriter, want string) {
	w.Header().Set("Allow", want)
	writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "method not allowed"})
}

// ServeHTTP routes the protocol.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	switch {
	case path == "/healthz":
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	case path == "/stats":
		if r.Method != http.MethodGet {
			methodNotAllowed(w, http.MethodGet)
			return
		}
		writeJSON(w, http.StatusOK, s.sched.Stats(r.URL.Query().Get("jobs") == "1"))
	case path == "/jobs":
		s.serveJobs(w, r)
	case strings.HasPrefix(path, "/jobs/"):
		s.serveJob(w, r, strings.TrimPrefix(path, "/jobs/"))
	default:
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "no such endpoint"})
	}
}

func (s *Server) serveJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var spec JobSpec
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			httpError(w, badSpec("decoding body: %v", err))
			return
		}
		id, err := s.sched.Submit(spec)
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, submitResponse{ID: id})
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.sched.Stats(true).Jobs)
	default:
		methodNotAllowed(w, "GET, POST")
	}
}

func (s *Server) serveJob(w http.ResponseWriter, r *http.Request, rest string) {
	id, action, _ := strings.Cut(rest, "/")
	switch action {
	case "":
		if r.Method != http.MethodGet {
			methodNotAllowed(w, http.MethodGet)
			return
		}
		st, err := s.sched.Status(id)
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	case "result":
		if r.Method != http.MethodGet {
			methodNotAllowed(w, http.MethodGet)
			return
		}
		res, st, err := s.sched.Result(id)
		if err != nil {
			httpError(w, err)
			return
		}
		code := http.StatusOK
		if !st.State.Terminal() {
			code = http.StatusAccepted
		}
		writeJSON(w, code, resultResponse{Status: st, Result: res})
	case "cancel":
		if r.Method != http.MethodPost {
			methodNotAllowed(w, http.MethodPost)
			return
		}
		if err := s.sched.Cancel(id); err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "canceling"})
	case "events":
		if r.Method != http.MethodGet {
			methodNotAllowed(w, http.MethodGet)
			return
		}
		s.serveEvents(w, r, id)
	default:
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "no such endpoint"})
	}
}

// serveEvents streams a job's StreamEvents as NDJSON until the stream's
// terminal event or the client hangs up. A watcher that falls behind
// the replay buffer gets a gap event; a slow watcher never blocks the
// scheduler, because the stream loop reads buffered snapshots and waits
// on a notification channel — the event path never writes to a socket.
func (s *Server) serveEvents(w http.ResponseWriter, r *http.Request, id string) {
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			httpError(w, badSpec("from must be a non-negative integer"))
			return
		}
		from = n
	}
	// Surface a bad ID as a 404 before committing to the stream.
	if _, _, err := s.sched.EventsSince(id, from); err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	ctx := r.Context()
	for {
		evs, wake, err := s.sched.EventsSince(id, from)
		if err != nil {
			return
		}
		for _, ev := range evs {
			if err := enc.Encode(ev); err != nil {
				return
			}
			from = ev.Seq + 1
			if ev.Terminal() {
				if flusher != nil {
					flusher.Flush()
				}
				return
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		// A terminal job appends nothing further. If the cursor already
		// sits at or past its last event (an over-large ?from clamped by
		// EventsSince), or the job has been evicted from the history, end
		// the stream instead of holding the connection open forever.
		if st, err := s.sched.Status(id); err != nil || (st.State.Terminal() && from >= st.Events) {
			return
		}
		select {
		case <-wake:
		case <-ctx.Done():
			return
		}
	}
}

// String renders the endpoint table (cmd/almostd's startup banner).
func (s *Server) String() string {
	return fmt.Sprintf("almostd: pool=%d queue<=%d buffer=%d history<=%d",
		s.sched.pool.Capacity(), s.sched.cfg.QueueLimit, s.sched.cfg.EventBuffer,
		s.sched.cfg.HistoryLimit)
}
