package service

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
)

// newTestServer stands up a scheduler behind a real HTTP listener and
// returns a client for it.
func newTestServer(t *testing.T, cfg SchedulerConfig) (*Scheduler, *Client) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	sched := NewScheduler(ctx, cfg)
	ts := httptest.NewServer(NewServer(sched))
	t.Cleanup(func() {
		ts.Close()
		sched.Close()
		cancel()
	})
	return sched, NewClientHTTP(ts.URL, ts.Client())
}

// TestServerLockRoundTrip drives the whole protocol for one job:
// submit, status, watch, result — and checks the served result is
// byte-for-byte what a direct library call produces.
func TestServerLockRoundTrip(t *testing.T) {
	_, client := newTestServer(t, SchedulerConfig{PoolSize: 2})
	ctx := context.Background()
	if err := client.Healthz(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}

	spec := JobSpec{Kind: KindLock, Circuit: "c432", KeySize: 10, Seed: 42}
	id, err := client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(id, "job-") {
		t.Fatalf("id = %q", id)
	}

	events := 0
	res, err := client.Wait(ctx, id, func(StreamEvent) error { events++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if events < 3 {
		t.Fatalf("stream delivered only %d events", events)
	}
	direct, err := RunSpec(ctx, spec, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Key != direct.Key || res.Netlist != direct.Netlist {
		t.Fatal("served lock result differs from the direct library call")
	}

	st, err := client.Status(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Kind != KindLock {
		t.Fatalf("status = %+v", st)
	}
	res2, st2, err := client.Result(ctx, id)
	if err != nil || res2 == nil || !st2.State.Terminal() {
		t.Fatalf("result fetch: %v, res=%v, state=%s", err, res2 != nil, st2.State)
	}
	jobs, err := client.Jobs(ctx)
	if err != nil || len(jobs) != 1 {
		t.Fatalf("jobs list: %v, %d entries", err, len(jobs))
	}
	stats, err := client.Stats(ctx, false)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 1 || stats.Accepted != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

// TestServerErrors checks that the error taxonomy crosses the wire:
// sentinel errors match with errors.Is on the client side.
func TestServerErrors(t *testing.T) {
	_, client := newTestServer(t, SchedulerConfig{PoolSize: 1})
	ctx := context.Background()

	if _, err := client.Submit(ctx, JobSpec{Kind: "bogus"}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("bad spec over the wire: %v", err)
	}
	if _, err := client.Status(ctx, "job-999999"); !errors.Is(err, ErrNoSuchJob) {
		t.Fatalf("missing job over the wire: %v", err)
	}
	if err := client.Cancel(ctx, "job-999999"); !errors.Is(err, ErrNoSuchJob) {
		t.Fatalf("cancel of missing job: %v", err)
	}
	if _, err := client.Watch(ctx, "job-999999", 0, nil); !errors.Is(err, ErrNoSuchJob) {
		t.Fatalf("watch of missing job: %v", err)
	}
}

// TestServerCancelMidFlight cancels a running harden over the wire and
// checks the stream ends with a canceled terminal event.
func TestServerCancelMidFlight(t *testing.T) {
	sched, client := newTestServer(t, SchedulerConfig{PoolSize: 1})
	ctx := context.Background()
	id, err := client.Submit(ctx, JobSpec{Kind: KindHarden, Circuit: "c432",
		KeySize: 6, Seed: 9, Effort: EffortSmoke})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, sched, id, StateRunning)
	if err := client.Cancel(ctx, id); err != nil {
		t.Fatal(err)
	}
	term, err := client.Watch(ctx, id, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if term.Type != StreamError || term.State != StateCanceled {
		t.Fatalf("terminal event = %+v, want canceled", term)
	}
	if _, err := client.Wait(ctx, id, nil); err == nil {
		t.Fatal("Wait on a canceled job should error")
	}
}

// TestServerStreamResume checks ?from=N: a second watch starting past
// the early events sees only the tail, with matching sequence numbers.
func TestServerStreamResume(t *testing.T) {
	_, client := newTestServer(t, SchedulerConfig{PoolSize: 1})
	ctx := context.Background()
	id, err := client.Submit(ctx, JobSpec{Kind: KindLock, Circuit: "c432", KeySize: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var all []StreamEvent
	term, err := client.Watch(ctx, id, 0, func(ev StreamEvent) error {
		all = append(all, ev)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	resumeAt := term.Seq - 1
	var tail []StreamEvent
	if _, err := client.Watch(ctx, id, resumeAt, func(ev StreamEvent) error {
		tail = append(tail, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(tail) != 2 || tail[0].Seq != resumeAt || tail[1].Seq != term.Seq {
		t.Fatalf("resume from %d returned %d events (%+v)", resumeAt, len(tail), tail)
	}
}

// TestServerStreamFromBeyondEnd is the remote half of the cursor-clamp
// regression: GET /jobs/{id}/events?from=999999 on a finished job must
// not panic the handler — the server ends the (empty) stream instead of
// holding the connection, and the client surfaces the missing terminal
// event as an error.
func TestServerStreamFromBeyondEnd(t *testing.T) {
	_, client := newTestServer(t, SchedulerConfig{PoolSize: 1})
	ctx := context.Background()
	id, err := client.Submit(ctx, JobSpec{Kind: KindLock, Circuit: "c432", KeySize: 6, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Wait(ctx, id, nil); err != nil {
		t.Fatal(err)
	}
	var got []StreamEvent
	_, err = client.Watch(ctx, id, 999999, func(ev StreamEvent) error {
		got = append(got, ev)
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "without a terminal event") {
		t.Fatalf("watch beyond the end: err = %v, want a no-terminal-event stream end", err)
	}
	if len(got) != 0 {
		t.Fatalf("watch beyond the end delivered %d events: %+v", len(got), got)
	}
	// The job itself is untouched and still queryable.
	if st, err := client.Status(ctx, id); err != nil || st.State != StateDone {
		t.Fatalf("status after bad watch: %+v, %v", st, err)
	}
}
