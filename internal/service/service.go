// Package service turns the ALMOST library into a hardening-as-a-service
// job server: clients submit lock/attack/harden/pipeline jobs over a
// line-delimited JSON wire protocol, the server runs them through the
// existing context-threaded entry points on a shared, fairly scheduled
// engine-worker pool, and streams each job's almost.Event progress feed
// back live. The design borrows the discipline of large DAQ front ends:
// many producers, one ordered event stream per job, nothing dropped
// silently and nothing leaked.
//
// The package splits into five pieces:
//
//   - the job model (this file): JobSpec describes work, JobResult is
//     the bit-stable outcome, JobStatus/StreamEvent/Stats are the wire
//     views of a job's life;
//   - RunSpec (run.go): the one function that executes a spec through
//     the library. The server's job runner and a client's local
//     verification call share it, so a served result cannot drift from
//     a direct library call with the same seed;
//   - Pool (pool.go): the shared worker-slot pool with fair, bounded-
//     overtaking admission and per-job Parallelism budgets;
//   - Scheduler (scheduler.go): the bounded job queue, per-job event
//     buffers, cancellation, and counters;
//   - Server/Client (server.go, client.go): the net/http wire layer —
//     stdlib only, JSON bodies, NDJSON event streams — plus the soak
//     harness (soak.go) that hammers a server with mixed
//     submit/cancel/watch load and verifies determinism end to end.
package service

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/nyu-secml/almost/internal/core"
)

// JobKind selects what a job runs.
type JobKind string

// Job kinds, in increasing order of cost.
const (
	// KindLock applies the spec's locking chain to the circuit.
	KindLock JobKind = "lock"
	// KindAttack runs the spec's attacks against a locked netlist with a
	// known true key and reports per-attack accuracies.
	KindAttack JobKind = "attack"
	// KindHarden runs the full ALMOST flow: lock, train the adversarial
	// proxy, search for S_ALMOST, synthesize.
	KindHarden JobKind = "harden"
	// KindPipeline is KindHarden plus a baseline-vs-hardened evaluation
	// of the spec's attacks (the CLI's `pipeline` subcommand).
	KindPipeline JobKind = "pipeline"
)

// Effort selects the framework budget a job runs with.
type Effort string

// Efforts, smallest first. The zero value means EffortQuick.
const (
	// EffortSmoke is the minimal budget that still exercises every stage
	// — the soak harness's setting.
	EffortSmoke Effort = "smoke"
	// EffortQuick matches the CLI's -quick trims (default).
	EffortQuick Effort = "quick"
	// EffortDefault is core.DefaultConfig unmodified.
	EffortDefault Effort = "default"
	// EffortFull is core.PaperConfig — the paper's §IV-A settings.
	EffortFull Effort = "full"
)

// Duration is a time.Duration with a human-readable JSON encoding
// ("30s", "5m") so specs read the same in requests and flags.
type Duration time.Duration

// MarshalJSON encodes the duration as a Go duration string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return []byte(`"` + time.Duration(d).String() + `"`), nil
}

// UnmarshalJSON accepts a Go duration string or a number of nanoseconds.
func (d *Duration) UnmarshalJSON(data []byte) error {
	s := strings.TrimSpace(string(data))
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		dur, err := time.ParseDuration(s[1 : len(s)-1])
		if err != nil {
			return fmt.Errorf("service: bad duration %s: %w", s, err)
		}
		*d = Duration(dur)
		return nil
	}
	// Strict integer parse: Sscanf-style prefix matching would read
	// "1.5" as 1ns, silently accepting a malformed timeout.
	ns, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return fmt.Errorf("service: bad duration %s (want a duration string or integer nanoseconds)", s)
	}
	*d = Duration(ns)
	return nil
}

// JobSpec describes one job on the wire. Exactly one of Circuit
// (a built-in benchmark name) and Netlist (inline netlist text, format
// named by Format) picks the input circuit. The zero values of the
// optional fields select the library defaults, so a spec is minimal to
// write by hand.
type JobSpec struct {
	Kind JobKind `json:"kind"`

	// Circuit names a built-in benchmark (c432 ... c7552, rand10k, ...).
	Circuit string `json:"circuit,omitempty"`
	// Netlist is inline netlist text; Format names its format ("bench"
	// or "aag"; binary AIGER is not inline-safe).
	Netlist string `json:"netlist,omitempty"`
	Format  string `json:"format,omitempty"`

	// KeySize is the locking key budget (lock/harden/pipeline). 0 means
	// 32.
	KeySize int `json:"key_size,omitempty"`
	// Seed drives every random choice of the job. Results are
	// bit-identical to a direct library call with the same seed. 0 means
	// 1.
	Seed int64 `json:"seed,omitempty"`
	// Lockers is the locking chain (Config.Lockers); empty means plain
	// RLL.
	Lockers []string `json:"lockers,omitempty"`
	// EvalAttacks is the Eq. 1 search objective's attack ensemble
	// (harden/pipeline; Config.EvalAttacks). Empty means the OMLA proxy
	// alone.
	EvalAttacks []string `json:"eval_attacks,omitempty"`
	// Attacks are the evaluation attacks: the measured attacks of a
	// KindAttack job, or the baseline-vs-hardened report of a
	// KindPipeline job.
	Attacks []string `json:"attacks,omitempty"`
	// Recipe is the defender's synthesis recipe handed to
	// self-referencing attacks (KindAttack; semicolon script, "" =
	// resyn2).
	Recipe string `json:"recipe,omitempty"`
	// Key is the true key of a KindAttack job's netlist, as a 0/1
	// string.
	Key string `json:"key,omitempty"`

	// Effort selects the framework budget ("" = quick).
	Effort Effort `json:"effort,omitempty"`
	// Parallelism is the requested engine-worker budget. The scheduler
	// clamps it to the shared pool size; 0 requests a single slot.
	// Results do not depend on it.
	Parallelism int `json:"parallelism,omitempty"`
	// Timeout bounds the job's run time server-side (the CLI's
	// -timeout); 0 means no limit. A timed-out job finishes as canceled.
	Timeout Duration `json:"timeout,omitempty"`
}

// JobState is a job's position in its lifecycle.
type JobState string

// Job states. Queued and waiting jobs have not consumed pool slots yet;
// done/failed/canceled are terminal.
const (
	StateQueued   JobState = "queued"   // accepted, not yet asking for slots
	StateWaiting  JobState = "waiting"  // in line for pool slots
	StateRunning  JobState = "running"  // executing on granted slots
	StateDone     JobState = "done"     // finished with a result
	StateFailed   JobState = "failed"   // finished with an error
	StateCanceled JobState = "canceled" // canceled or timed out
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// AttackAccuracy is one attack's measured key-recovery accuracy.
type AttackAccuracy struct {
	Attack   string  `json:"attack"`
	Accuracy float64 `json:"accuracy"`
}

// AttackOutcome is one row of a pipeline job's baseline-vs-hardened
// report.
type AttackOutcome struct {
	Attack   string  `json:"attack"`
	Baseline float64 `json:"baseline"` // accuracy on the resyn2-synthesized netlist
	Hardened float64 `json:"hardened"` // accuracy on the S_ALMOST-synthesized netlist
}

// JobResult is a completed job's outcome. It contains only
// deterministically ordered, plainly encoded values — no maps, no
// timestamps — so two runs of the same spec produce byte-identical
// JSON, which is what the soak harness asserts over the wire.
type JobResult struct {
	Kind JobKind `json:"kind"`
	// Recipe is S_ALMOST as a semicolon script (harden/pipeline).
	Recipe string `json:"recipe,omitempty"`
	// Accuracy is the headline proxy accuracy of Recipe.
	Accuracy float64 `json:"accuracy,omitempty"`
	// Accuracies are the search objective's per-attack accuracies in
	// canonical registration order (harden/pipeline), or the measured
	// accuracies in request order (attack jobs).
	Accuracies []AttackAccuracy `json:"accuracies,omitempty"`
	// Key is the correct key as a 0/1 string (lock/harden/pipeline).
	Key string `json:"key,omitempty"`
	// Netlist is the output netlist in BENCH text (locked netlist for
	// lock jobs, hardened netlist for harden/pipeline).
	Netlist string `json:"netlist,omitempty"`
	// Lockers is the locking chain applied, in order.
	Lockers []string `json:"lockers,omitempty"`
	// Attacks is the pipeline job's baseline-vs-hardened report, in
	// request order.
	Attacks []AttackOutcome `json:"attacks,omitempty"`
}

// JobStatus is the wire view of a job's current state.
type JobStatus struct {
	ID    string   `json:"id"`
	Kind  JobKind  `json:"kind"`
	State JobState `json:"state"`
	// Phase is the last pipeline phase the job reported ("" before the
	// first event).
	Phase core.Phase `json:"phase,omitempty"`
	// Granted is the pool budget the job runs with (0 until admitted).
	Granted int `json:"granted,omitempty"`
	// Events counts stream events emitted so far; Dropped counts events
	// aged out of the replay buffer.
	Events  int `json:"events"`
	Dropped int `json:"dropped,omitempty"`
	// Error is the failure or cancellation cause of a terminal job.
	Error string `json:"error,omitempty"`
	// Submitted/Finished are server wall-clock times (status metadata
	// only — never part of JobResult, which must stay bit-stable).
	Submitted time.Time  `json:"submitted"`
	Finished  *time.Time `json:"finished,omitempty"`
}

// Stream event types.
const (
	// StreamStateChange announces a job state transition; State is set.
	StreamStateChange = "state"
	// StreamProgress carries one pipeline Event.
	StreamProgress = "event"
	// StreamGap reports events aged out of the replay buffer before this
	// subscriber caught up; Dropped is set.
	StreamGap = "gap"
	// StreamResult is terminal: the job finished and Result is set.
	StreamResult = "result"
	// StreamError is terminal: the job failed or was canceled; Error
	// and State are set.
	StreamError = "error"
)

// StreamEvent is one line of a job's NDJSON event stream. Seq numbers
// are dense per job, so a client can resume a broken stream with
// ?from=<next seq> and miss nothing.
type StreamEvent struct {
	Seq     int         `json:"seq"`
	Type    string      `json:"type"`
	Event   *core.Event `json:"event,omitempty"`
	State   JobState    `json:"state,omitempty"`
	Dropped int         `json:"dropped,omitempty"`
	Result  *JobResult  `json:"result,omitempty"`
	Error   string      `json:"error,omitempty"`
}

// Terminal reports whether this event ends the stream.
func (ev StreamEvent) Terminal() bool {
	return ev.Type == StreamResult || ev.Type == StreamError
}

// Stats is the /stats endpoint's snapshot.
type Stats struct {
	// QueueDepth counts jobs accepted but not yet running (queued +
	// waiting); Running counts jobs holding pool slots.
	QueueDepth int `json:"queue_depth"`
	Running    int `json:"running"`
	// PoolSize/InFlight describe the shared worker pool: InFlight is the
	// aggregate granted budget, never above PoolSize.
	PoolSize int `json:"pool_size"`
	InFlight int `json:"in_flight"`
	Waiting  int `json:"waiting"`
	// Lifetime counters.
	Accepted  int64 `json:"accepted"`
	Rejected  int64 `json:"rejected"`
	Canceled  int64 `json:"canceled"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	// Jobs lists per-job statuses in submission order.
	Jobs []JobStatus `json:"jobs,omitempty"`
}

// Spec validation errors wrap ErrBadSpec so the server can map them to
// HTTP 400.
var ErrBadSpec = errors.New("invalid job spec")

func badSpec(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadSpec, fmt.Sprintf(format, args...))
}

// Validate checks the spec before it is accepted into the queue, so a
// malformed job is rejected at submit time instead of failing minutes
// later on a worker.
func (s JobSpec) Validate() error {
	switch s.Kind {
	case KindLock, KindAttack, KindHarden, KindPipeline:
	default:
		return badSpec("unknown kind %q (want lock, attack, harden, or pipeline)", s.Kind)
	}
	if (s.Circuit == "") == (s.Netlist == "") {
		return badSpec("exactly one of circuit and netlist must be set")
	}
	if s.Netlist != "" {
		switch s.Format {
		case "bench", "aag":
		case "":
			return badSpec("format is required with an inline netlist (bench or aag)")
		default:
			return badSpec("unknown inline netlist format %q (want bench or aag)", s.Format)
		}
	}
	switch s.Effort {
	case "", EffortSmoke, EffortQuick, EffortDefault, EffortFull:
	default:
		return badSpec("unknown effort %q (want smoke, quick, default, or full)", s.Effort)
	}
	if s.KeySize < 0 {
		return badSpec("key_size must be non-negative")
	}
	if s.Timeout < 0 {
		return badSpec("timeout must be non-negative")
	}
	for _, name := range s.Lockers {
		if _, ok := core.LookupLocker(name); !ok {
			return badSpec("unknown locker %q (registered: %s)", name, strings.Join(core.Lockers(), ", "))
		}
	}
	for _, name := range append(append([]string{}, s.EvalAttacks...), s.Attacks...) {
		if _, ok := core.LookupAttacker(name); !ok {
			return badSpec("unknown attack %q (registered: %s)", name, strings.Join(core.Attackers(), ", "))
		}
	}
	switch s.Kind {
	case KindAttack:
		if len(s.Attacks) == 0 {
			return badSpec("attack jobs need at least one entry in attacks")
		}
		if strings.Trim(s.Key, "01") != "" || s.Key == "" {
			return badSpec("attack jobs need the true key as a 0/1 string")
		}
	case KindLock, KindHarden, KindPipeline:
		if s.Key != "" {
			return badSpec("key is only meaningful on attack jobs")
		}
	}
	return nil
}

// sortStatuses orders job statuses by ID (IDs are zero-padded sequence
// numbers, so this is submission order).
func sortStatuses(js []JobStatus) {
	sort.Slice(js, func(i, j int) bool { return js[i].ID < js[j].ID })
}
