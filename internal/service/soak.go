package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// SoakConfig shapes a soak run. Zero values select the short smoke
// shape; the CLI's `almost soak` raises them to the acceptance load.
type SoakConfig struct {
	// Requests is the number of job submissions (default 80).
	Requests int
	// Concurrency is the number of client workers (default 8).
	Concurrency int
	// VerifyEvery verifies every Nth completed job's result against a
	// direct RunSpec call with the same seed and Parallelism 1 — the
	// end-to-end determinism assertion (default 5; 0 disables).
	VerifyEvery int
	// Seed drives the deterministic request mix.
	Seed int64
	// Circuit is the benchmark the jobs run on (default c432).
	Circuit string
	// Out receives progress lines; nil silences them.
	Out io.Writer
}

func (c *SoakConfig) fill() {
	if c.Requests <= 0 {
		c.Requests = 80
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.VerifyEvery == 0 {
		c.VerifyEvery = 5
	}
	if c.Circuit == "" {
		c.Circuit = "c432"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// SoakReport is what a soak run measured. Every submitted job must
// reach a terminal state — Soak errors out otherwise — so the counters
// always add up.
type SoakReport struct {
	Submitted int `json:"submitted"`
	Done      int `json:"done"`
	Canceled  int `json:"canceled"`
	Failed    int `json:"failed"`
	// BadSpecs counts deliberately malformed submissions the server
	// rejected with 400 (protocol exercise, not job outcomes).
	BadSpecs int `json:"bad_specs"`
	// Retries counts submits that hit the bounded queue's backpressure
	// and were retried.
	Retries int `json:"retries"`
	// Watched counts jobs followed over the NDJSON stream; Events counts
	// stream lines received across them.
	Watched int `json:"watched"`
	Events  int `json:"events"`
	// Verified counts completed jobs whose served result was
	// byte-identical to a direct library run.
	Verified int `json:"verified"`
}

// soakMode is how a worker follows a submitted job.
type soakMode int

const (
	modePoll soakMode = iota
	modeWatch
	modeCancel
)

// Soak hammers a server with a deterministic mixed load — submits,
// cancellations, stream watches, malformed specs, queue backpressure —
// and fails if any job stalls short of a terminal state or any verified
// result differs from a direct library call. Run it under -race with a
// goroutine-leak check around it (the tests and CI do) and it is the
// service's endurance proof.
func Soak(ctx context.Context, client *Client, cfg SoakConfig) (SoakReport, error) {
	cfg.fill()
	logf := func(format string, args ...any) {
		if cfg.Out != nil {
			fmt.Fprintf(cfg.Out, format+"\n", args...)
		}
	}

	// Prepare a locked netlist once so attack jobs are self-contained.
	lockSpec := JobSpec{Kind: KindLock, Circuit: cfg.Circuit, KeySize: 12, Seed: cfg.Seed}
	base, err := RunSpec(ctx, lockSpec, 1, nil)
	if err != nil {
		return SoakReport{}, fmt.Errorf("soak setup: %w", err)
	}

	var (
		mu     sync.Mutex
		report SoakReport
		firstE error
	)
	fail := func(err error) {
		mu.Lock()
		if firstE == nil {
			firstE = err
		}
		mu.Unlock()
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(atomic.AddInt64(&next, 1) - 1)
				if i >= cfg.Requests {
					return
				}
				if err := soakOne(ctx, client, cfg, base, i, &mu, &report); err != nil {
					fail(fmt.Errorf("request %d: %w", i, err))
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstE != nil {
		return report, firstE
	}
	if err := ctx.Err(); err != nil {
		return report, err
	}
	if got := report.Done + report.Canceled + report.Failed; got != report.Submitted {
		return report, fmt.Errorf("soak: %d submitted jobs but only %d reached a terminal state", report.Submitted, got)
	}
	if report.Failed > 0 {
		return report, fmt.Errorf("soak: %d jobs failed", report.Failed)
	}
	logf("soak: %d jobs (%d done, %d canceled), %d watched / %d events, %d verified, %d bad specs, %d retries",
		report.Submitted, report.Done, report.Canceled, report.Watched,
		report.Events, report.Verified, report.BadSpecs, report.Retries)
	return report, nil
}

// soakSpec builds the deterministic spec and follow mode for request i.
func soakSpec(cfg SoakConfig, base *JobResult, i int) (JobSpec, soakMode) {
	var spec JobSpec
	switch r := i % 40; {
	case r == 0:
		// Rare full-flow job: lock → train → search → synthesize at smoke
		// effort, asking for more slots than its neighbors.
		spec = JobSpec{Kind: KindHarden, Circuit: cfg.Circuit, KeySize: 8,
			Seed: cfg.Seed + int64(i), Effort: EffortSmoke, Parallelism: 1 + i%4}
	case r <= 12:
		// Attack jobs on the pre-locked netlist: closed-form scope attack,
		// millisecond scale.
		spec = JobSpec{Kind: KindAttack, Netlist: base.Netlist, Format: "bench",
			Key: base.Key, Attacks: []string{"scope"}, Parallelism: 1 + i%3}
	default:
		// The bulk: cheap lock jobs with varying keys and seeds.
		spec = JobSpec{Kind: KindLock, Circuit: cfg.Circuit, KeySize: 4 + i%8,
			Seed: cfg.Seed + int64(i), Parallelism: 1 + i%2}
	}
	switch {
	case i%7 == 3:
		return spec, modeCancel
	case i%3 == 0:
		return spec, modeWatch
	}
	return spec, modePoll
}

// soakOne drives one request from submit to terminal state.
func soakOne(ctx context.Context, client *Client, cfg SoakConfig, base *JobResult,
	i int, mu *sync.Mutex, report *SoakReport) error {
	// Sprinkle malformed specs through the load to keep the 400 path hot.
	if i%29 == 11 {
		_, err := client.Submit(ctx, JobSpec{Kind: "frobnicate"})
		if !errors.Is(err, ErrBadSpec) {
			return fmt.Errorf("malformed spec: want ErrBadSpec, got %v", err)
		}
		mu.Lock()
		report.BadSpecs++
		mu.Unlock()
		return nil
	}
	spec, mode := soakSpec(cfg, base, i)

	// Submit, riding out queue backpressure.
	var id string
	for {
		var err error
		id, err = client.Submit(ctx, spec)
		if err == nil {
			break
		}
		if !errors.Is(err, ErrQueueFull) {
			return fmt.Errorf("submit: %w", err)
		}
		mu.Lock()
		report.Retries++
		mu.Unlock()
		select {
		case <-time.After(2 * time.Millisecond):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	mu.Lock()
	report.Submitted++
	mu.Unlock()

	var state JobState
	var result *JobResult
	switch mode {
	case modeCancel:
		if err := client.Cancel(ctx, id); err != nil {
			return fmt.Errorf("cancel %s: %w", id, err)
		}
		st, err := soakPoll(ctx, client, id)
		if err != nil {
			return err
		}
		state = st.State
	case modeWatch:
		events := 0
		term, err := client.Watch(ctx, id, 0, func(StreamEvent) error { events++; return nil })
		if err != nil {
			return fmt.Errorf("watch %s: %w", id, err)
		}
		mu.Lock()
		report.Watched++
		report.Events += events
		mu.Unlock()
		state = StateDone
		if term.Type == StreamError {
			state = term.State
		}
		result = term.Result
	default:
		st, err := soakPoll(ctx, client, id)
		if err != nil {
			return err
		}
		state = st.State
		if st.State == StateDone {
			if result, _, err = client.Result(ctx, id); err != nil {
				return fmt.Errorf("result %s: %w", id, err)
			}
		}
	}

	mu.Lock()
	switch state {
	case StateDone:
		report.Done++
	case StateCanceled:
		report.Canceled++
	default:
		report.Failed++
	}
	mu.Unlock()
	if state == StateFailed {
		st, _ := client.Status(ctx, id)
		return fmt.Errorf("job %s failed: %s", id, st.Error)
	}

	// The determinism assertion: the served result must be byte-identical
	// to a direct library call with the same spec, seed, and Parallelism
	// 1 — any divergence in the engine, the scheduler, or the wire
	// encoding shows up here.
	if cfg.VerifyEvery > 0 && state == StateDone && result != nil && i%cfg.VerifyEvery == 0 {
		direct, err := RunSpec(ctx, spec, 1, nil)
		if err != nil {
			return fmt.Errorf("direct run for %s: %w", id, err)
		}
		served, err := json.Marshal(result)
		if err != nil {
			return err
		}
		local, err := json.Marshal(direct)
		if err != nil {
			return err
		}
		if !bytes.Equal(served, local) {
			return fmt.Errorf("job %s: served result differs from direct run\n served: %.200s\n direct: %.200s", id, served, local)
		}
		mu.Lock()
		report.Verified++
		mu.Unlock()
	}
	return nil
}

// soakPoll polls a job's status until it is terminal.
func soakPoll(ctx context.Context, client *Client, id string) (JobStatus, error) {
	for {
		st, err := client.Status(ctx, id)
		if err != nil {
			return JobStatus{}, fmt.Errorf("status %s: %w", id, err)
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-time.After(3 * time.Millisecond):
		case <-ctx.Done():
			return JobStatus{}, ctx.Err()
		}
	}
}
