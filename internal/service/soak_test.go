package service

import (
	"context"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"
)

// TestSoak runs the mixed-load soak against an in-process server and
// holds it to the harness's own bar: every job terminal, watched
// streams complete, verified results byte-identical to direct library
// runs — all under the race detector in CI, wrapped in a goroutine-leak
// check.
func TestSoak(t *testing.T) {
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	sched := NewScheduler(ctx, SchedulerConfig{PoolSize: 4, QueueLimit: 24, EventBuffer: 64})
	ts := httptest.NewServer(NewServer(sched))
	client := NewClientHTTP(ts.URL, ts.Client())

	cfg := SoakConfig{Requests: 80, Concurrency: 8, Seed: 3}
	if testing.Short() {
		cfg = SoakConfig{Requests: 44, Concurrency: 6, Seed: 3}
	}
	report, err := Soak(ctx, client, cfg)
	if err != nil {
		t.Fatalf("soak failed: %v (report %+v)", err, report)
	}
	if report.Done == 0 || report.Canceled == 0 {
		t.Fatalf("mix did not exercise both outcomes: %+v", report)
	}
	if report.Watched == 0 || report.Events == 0 {
		t.Fatalf("no streams watched: %+v", report)
	}
	if report.Verified == 0 {
		t.Fatalf("no results verified against direct runs: %+v", report)
	}
	if report.BadSpecs == 0 {
		t.Fatalf("malformed-spec path never exercised: %+v", report)
	}

	// Server-side accounting must agree with the client's view.
	stats, err := client.Stats(context.Background(), false)
	if err != nil {
		t.Fatal(err)
	}
	if int(stats.Completed) != report.Done {
		t.Fatalf("server completed %d, client saw %d done", stats.Completed, report.Done)
	}
	if int(stats.Canceled) != report.Canceled {
		t.Fatalf("server canceled %d, client saw %d", stats.Canceled, report.Canceled)
	}
	if stats.QueueDepth != 0 || stats.Running != 0 || stats.InFlight != 0 {
		t.Fatalf("server not quiescent after soak: %+v", stats)
	}

	// Tear everything down and hold the goroutine count to the baseline:
	// a stuck stream handler, a leaked runner, or an unreleased pool
	// waiter all show up here.
	ts.Close()
	sched.Close()
	cancel()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
