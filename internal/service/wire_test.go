package service

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

// TestDurationWire checks the human-readable duration encoding both
// ways, plus the raw-nanoseconds fallback.
func TestDurationWire(t *testing.T) {
	data, err := json.Marshal(Duration(90 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `"1m30s"` {
		t.Fatalf("duration marshals as %s", data)
	}
	var d Duration
	if err := json.Unmarshal([]byte(`"250ms"`), &d); err != nil || d != Duration(250*time.Millisecond) {
		t.Fatalf("string form: %v, %v", d, err)
	}
	if err := json.Unmarshal([]byte(`1000000`), &d); err != nil || d != Duration(time.Millisecond) {
		t.Fatalf("number form: %v, %v", d, err)
	}
	if err := json.Unmarshal([]byte(`"yesterday"`), &d); err == nil {
		t.Fatal("bad duration should fail")
	}
	// Strict numeric parse: a float must error, not truncate to its
	// integer-prefix nanoseconds.
	if err := json.Unmarshal([]byte(`1.5`), &d); err == nil {
		t.Fatal("fractional number should fail, not decode as 1ns")
	}
}

// TestJobSpecWire round-trips a fully populated spec and pins the
// field names a minimal spec puts on the wire.
func TestJobSpecWire(t *testing.T) {
	spec := JobSpec{
		Kind: KindPipeline, Circuit: "c880", KeySize: 64, Seed: 9,
		Lockers: []string{"rll", "mux"}, EvalAttacks: []string{"omla", "scope"},
		Attacks: []string{"scope"}, Effort: EffortQuick, Parallelism: 3,
		Timeout: Duration(time.Minute),
	}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back JobSpec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, back) {
		t.Fatalf("spec round trip:\n in  %+v\n out %+v", spec, back)
	}

	minimal := JobSpec{Kind: KindLock, Circuit: "c432"}
	data, err = json.Marshal(minimal)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"kind":"lock","circuit":"c432"}`
	if string(data) != want {
		t.Fatalf("minimal spec wire format drifted:\n got  %s\n want %s", data, want)
	}
}

// TestJobResultWire pins the result encoding — the bytes the soak
// harness compares, so ordering and omission rules are contractual.
func TestJobResultWire(t *testing.T) {
	res := JobResult{
		Kind:   KindPipeline,
		Recipe: "balance; rewrite",
		Accuracies: []AttackAccuracy{
			{Attack: "omla", Accuracy: 0.53125},
			{Attack: "scope", Accuracy: 0.5},
		},
		Key:     "0110",
		Lockers: []string{"rll"},
		Attacks: []AttackOutcome{{Attack: "scope", Baseline: 0.75, Hardened: 0.5}},
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"kind":"pipeline","recipe":"balance; rewrite",` +
		`"accuracies":[{"attack":"omla","accuracy":0.53125},{"attack":"scope","accuracy":0.5}],` +
		`"key":"0110","lockers":["rll"],` +
		`"attacks":[{"attack":"scope","baseline":0.75,"hardened":0.5}]}`
	if string(data) != want {
		t.Fatalf("result wire format drifted:\n got  %s\n want %s", data, want)
	}
	var back JobResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, back) {
		t.Fatalf("result round trip:\n in  %+v\n out %+v", res, back)
	}
}

// TestJobSpecValidate spot-checks the reject reasons a server leans on.
func TestJobSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec JobSpec
		ok   bool
	}{
		{"lock ok", JobSpec{Kind: KindLock, Circuit: "c432"}, true},
		{"no kind", JobSpec{Circuit: "c432"}, false},
		{"both inputs", JobSpec{Kind: KindLock, Circuit: "c432", Netlist: "INPUT(a)"}, false},
		{"neither input", JobSpec{Kind: KindLock}, false},
		{"netlist without format", JobSpec{Kind: KindLock, Netlist: "INPUT(a)"}, false},
		{"bad format", JobSpec{Kind: KindLock, Netlist: "x", Format: "verilog"}, false},
		{"bad locker", JobSpec{Kind: KindLock, Circuit: "c432", Lockers: []string{"nope"}}, false},
		{"bad attack", JobSpec{Kind: KindAttack, Circuit: "c432", Key: "01", Attacks: []string{"nope"}}, false},
		{"attack without attacks", JobSpec{Kind: KindAttack, Circuit: "c432", Key: "01"}, false},
		{"attack without key", JobSpec{Kind: KindAttack, Circuit: "c432", Attacks: []string{"scope"}}, false},
		{"key on lock job", JobSpec{Kind: KindLock, Circuit: "c432", Key: "01"}, false},
		{"bad effort", JobSpec{Kind: KindHarden, Circuit: "c432", Effort: "heroic"}, false},
		{"negative timeout", JobSpec{Kind: KindLock, Circuit: "c432", Timeout: -1}, false},
		{"attack ok", JobSpec{Kind: KindAttack, Circuit: "c432", Key: "0101",
			Attacks: []string{"scope"}}, true},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: validation should fail", tc.name)
		}
	}
}

// TestConfigFromEnv checks the env-var discipline: defaults when unset,
// values when set, loud errors when malformed.
func TestConfigFromEnv(t *testing.T) {
	cfg, err := ConfigFromEnv(func(string) (string, bool) { return "", false })
	if err != nil || cfg.Addr != DefaultAddr {
		t.Fatalf("defaults: %+v, %v", cfg, err)
	}
	env := map[string]string{
		EnvAddr: "0.0.0.0:8080", EnvPoolSize: "8", EnvQueueLimit: "64", EnvEventBuffer: "128",
		EnvHistoryLimit: "32",
	}
	lookup := func(k string) (string, bool) { v, ok := env[k]; return v, ok }
	cfg, err = ConfigFromEnv(lookup)
	if err != nil {
		t.Fatal(err)
	}
	want := ServerConfig{Addr: "0.0.0.0:8080",
		Scheduler: SchedulerConfig{PoolSize: 8, QueueLimit: 64, EventBuffer: 128, HistoryLimit: 32}}
	if cfg != want {
		t.Fatalf("env config = %+v, want %+v", cfg, want)
	}
	env[EnvPoolSize] = "lots"
	if _, err := ConfigFromEnv(lookup); err == nil {
		t.Fatal("malformed int should error")
	}
}
