package subgraph

import (
	"slices"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/gnn"
)

// Scratch holds the reusable state of batched locality extraction: the
// netlist-wide indices derived once per extraction (CSR fanout index,
// fanout counts, PO marks) and the per-seed BFS state (epoch-stamped
// visit marks instead of per-call maps). A scratch is not safe for
// concurrent use; the engine keeps one per worker. The zero value is
// ready to use.
type Scratch struct {
	// Netlist-wide state, rebuilt once per ForKeyInputsInto call and
	// shared across every key gate of that netlist.
	foOff   []int32 // CSR fanout offsets, len nodes+1
	foEdges []int32 // CSR fanout targets (AND ids, ascending per node)
	foCnt   []int   // total fanout counts (AND + output references)
	poMark  []bool  // node drives a primary output
	kis     []int   // key-input index buffer for AllInto/LabeledInto

	// Per-seed BFS state, epoch-stamped so no per-seed clearing is
	// needed: an entry is valid only when mark[id] == epoch.
	mark  []int32
	dist  []int32 // BFS distance at mark's epoch
	local []int32 // batch-local feature row at mark's epoch
	queue []int32
	epoch int32

	// Packed per-seed results of the BFS pass: seed s owns
	// idsAll[seedOff[s]:seedOff[s+1]] (sorted node IDs) and the parallel
	// distAll entries.
	idsAll  []int32
	distAll []int32
	seedOff []int

	deg []int // per-batch-row degree counts for Batch.InitAdj
}

// grow sizes the netlist-wide buffers for n nodes and resets the epoch
// stamps when the mark buffer is replaced.
//
//almost:hotpath
func (s *Scratch) grow(n int) {
	if cap(s.mark) < n {
		s.mark = make([]int32, n)
		s.dist = make([]int32, n)
		s.local = make([]int32, n)
		s.queue = make([]int32, 0, n)
		s.epoch = 0
	}
	s.mark = s.mark[:n]
	s.dist = s.dist[:n]
	s.local = s.local[:n]
	if cap(s.foOff) < n+1 {
		s.foOff = make([]int32, n+1)
	}
	s.foOff = s.foOff[:n+1]
	if cap(s.poMark) < n {
		s.poMark = make([]bool, n)
	}
	s.poMark = s.poMark[:n]
	for i := range s.poMark {
		s.poMark[i] = false
	}
}

// buildFanouts fills the CSR fanout index with exactly the lists
// aig.Fanouts builds (per node: referencing AND ids ascending, one entry
// even when both fanins coincide), without the per-node slice headers.
//
//almost:hotpath
func (s *Scratch) buildFanouts(g *aig.AIG) {
	n := g.NumNodes()
	for i := range s.foOff {
		s.foOff[i] = 0
	}
	total := 0
	for id := 0; id < n; id++ {
		if !g.IsAnd(id) {
			continue
		}
		f0, f1 := g.Fanins(id)
		s.foOff[f0.Node()+1]++
		total++
		if f1.Node() != f0.Node() {
			s.foOff[f1.Node()+1]++
			total++
		}
	}
	for i := 1; i <= n; i++ {
		s.foOff[i] += s.foOff[i-1]
	}
	if cap(s.foEdges) < total {
		s.foEdges = make([]int32, total)
	}
	s.foEdges = s.foEdges[:total]
	// Fill via a moving cursor per node; restore offsets afterwards by
	// shifting (cursor of node i ends where node i+1 starts).
	for id := 0; id < n; id++ {
		if !g.IsAnd(id) {
			continue
		}
		f0, f1 := g.Fanins(id)
		s.foEdges[s.foOff[f0.Node()]] = int32(id)
		s.foOff[f0.Node()]++
		if f1.Node() != f0.Node() {
			s.foEdges[s.foOff[f1.Node()]] = int32(id)
			s.foOff[f1.Node()]++
		}
	}
	copy(s.foOff[1:], s.foOff[:n])
	s.foOff[0] = 0
}

// fanoutsOf returns the CSR fanout list of node id.
func (s *Scratch) fanoutsOf(id int) []int32 {
	return s.foEdges[s.foOff[id]:s.foOff[id+1]]
}

// bfs runs the k-hop BFS from seed, appending the visited node IDs (in
// visit order) to idsAll with distances stamped into s.dist. It returns
// the extended idsAll. The visited set and distances equal
// aig.KHopNeighborhood's: a shortest path to any node within k hops runs
// entirely through nodes within k hops, so restricting later feature
// distances to the subgraph changes nothing.
//
//almost:hotpath
func (s *Scratch) bfs(g *aig.AIG, seed, hops int) {
	s.epoch++
	epoch := s.epoch
	s.mark[seed] = epoch
	s.dist[seed] = 0
	//almost:nolint hotpathalloc // queue capacity is reserved for the whole node count in grow
	s.queue = append(s.queue[:0], int32(seed))
	//almost:nolint hotpathalloc // amortized slab growth; steady-state capacity is reached after one extraction
	s.idsAll = append(s.idsAll, int32(seed))
	for qi := 0; qi < len(s.queue); qi++ {
		id := int(s.queue[qi])
		d := s.dist[id]
		if int(d) >= hops {
			continue
		}
		//almost:nolint hotpathalloc // non-escaping local closure; stack-allocated
		visit := func(a int) {
			if s.mark[a] != epoch {
				s.mark[a] = epoch
				s.dist[a] = d + 1
				s.queue = append(s.queue, int32(a))
				s.idsAll = append(s.idsAll, int32(a))
			}
		}
		if g.IsAnd(id) {
			f0, f1 := g.Fanins(id)
			visit(f0.Node())
			visit(f1.Node())
		}
		for _, a := range s.fanoutsOf(id) {
			visit(int(a))
		}
	}
}

// ForKeyInputsInto extracts the localities of the key inputs at input
// indices kis into b as one packed batch (graph order = kis order),
// reusing sc across calls and sharing the fanout index, BFS scratch, and
// feature buffers across all key gates of the netlist. It returns b,
// allocating one if nil. Labels are zeroed; callers attach them.
//
// The packed graphs are bit-for-bit the scalar ForKeyInput graphs: node
// order (ascending ID), features, and — critically for the aggregation
// sum order — the adjacency append order are replicated exactly.
//
// The returned batch aliases sc-independent storage owned by b itself
// and is valid until b's next reuse; sc only carries the extraction
// indices.
//
//almost:hotpath
func (e Extractor) ForKeyInputsInto(sc *Scratch, g *aig.AIG, kis []int, b *gnn.Batch) *gnn.Batch {
	if b == nil {
		b = &gnn.Batch{}
	}
	n := g.NumNodes()
	sc.grow(n)
	sc.buildFanouts(g)
	sc.foCnt = g.FanoutCountsInto(sc.foCnt)
	for i := 0; i < g.NumOutputs(); i++ {
		sc.poMark[g.Output(i).Node()] = true
	}

	// Pass A: one BFS per seed; collect the sorted ID list and snapshot
	// each node's distance (still stamped from that seed's BFS) into the
	// parallel distAll slab before the next seed overwrites the stamps.
	sc.idsAll = sc.idsAll[:0]
	sc.distAll = sc.distAll[:0]
	if cap(sc.seedOff) < len(kis)+1 {
		sc.seedOff = make([]int, len(kis)+1)
	}
	sc.seedOff = sc.seedOff[:len(kis)+1]
	for si, ki := range kis {
		off := len(sc.idsAll)
		sc.seedOff[si] = off
		sc.bfs(g, g.Input(ki).Node(), e.Hops)
		slices.Sort(sc.idsAll[off:])
		for _, id := range sc.idsAll[off:] {
			//almost:nolint hotpathalloc // amortized slab growth; steady-state capacity is reached after one extraction
			sc.distAll = append(sc.distAll, sc.dist[id])
		}
	}
	sc.seedOff[len(kis)] = len(sc.idsAll)
	total := len(sc.idsAll)

	maxLevel := g.NumLevels()
	if maxLevel == 0 {
		maxLevel = 1
	}
	b.Reset(total, FeatureDim, len(kis))

	// Pass B: stamp batch-local rows per seed and count adjacency
	// degrees in the scalar path's visit order.
	if cap(sc.deg) < total {
		sc.deg = make([]int, total)
	}
	sc.deg = sc.deg[:total]
	for i := range sc.deg {
		sc.deg[i] = 0
	}
	for si := range kis {
		lo, hi := sc.seedOff[si], sc.seedOff[si+1]
		sc.epoch++
		for i := lo; i < hi; i++ {
			id := sc.idsAll[i]
			sc.mark[id] = sc.epoch
			sc.local[id] = int32(i)
		}
		for i := lo; i < hi; i++ {
			id := int(sc.idsAll[i])
			if !g.IsAnd(id) {
				continue
			}
			f0, f1 := g.Fanins(id)
			if sc.mark[f0.Node()] == sc.epoch {
				sc.deg[i]++
				sc.deg[sc.local[f0.Node()]]++
			}
			if sc.mark[f1.Node()] == sc.epoch {
				sc.deg[i]++
				sc.deg[sc.local[f1.Node()]]++
			}
		}
	}
	b.InitAdj(sc.deg)

	// Pass C: re-stamp per seed, then fill features and adjacency in
	// exactly ForKeyInput's loops — ascending node ID, f0 before f1,
	// forward edge before back edge — so every neighbor list carries the
	// scalar order and the aggregation sums terms identically.
	for si, ki := range kis {
		seed := g.Input(ki).Node()
		lo, hi := sc.seedOff[si], sc.seedOff[si+1]
		b.Off[si] = lo
		sc.epoch++
		for i := lo; i < hi; i++ {
			id := sc.idsAll[i]
			sc.mark[id] = sc.epoch
			sc.local[id] = int32(i)
		}
		for i := lo; i < hi; i++ {
			id := int(sc.idsAll[i])
			row := b.X.Row(i)
			switch {
			case g.IsConst(id):
				row[fConst] = 1
			case g.IsInput(id):
				if ii := g.InputIndexOfNode(id); ii >= 0 && g.InputIsKey(ii) {
					row[fKeyInput] = 1
				} else {
					row[fInput] = 1
				}
			default:
				row[fAnd] = 1
				f0, f1 := g.Fanins(id)
				if f0.Neg() {
					row[fFanin0Neg] = 1
				}
				if f1.Neg() {
					row[fFanin1Neg] = 1
				}
				if j := f0.Node(); sc.mark[j] == sc.epoch {
					b.AddEdge(i, int(sc.local[j]))
					b.AddEdge(int(sc.local[j]), i)
				}
				if j := f1.Node(); sc.mark[j] == sc.epoch {
					b.AddEdge(i, int(sc.local[j]))
					b.AddEdge(int(sc.local[j]), i)
				}
			}
			fo := sc.foCnt[id]
			if fo > 8 {
				fo = 8
			}
			row[fFanout] = float64(fo) / 8
			row[fLevel] = float64(g.Level(id)) / float64(maxLevel)
			if sc.poMark[id] {
				row[fIsPO] = 1
			}
			row[fDist] = float64(sc.distAll[i]) / float64(max(e.Hops, 1))
			if id == seed {
				row[fIsSeed] = 1
			}
		}
	}
	b.Off[len(kis)] = total
	return b
}

// AllInto extracts one locality per key input of g, in key-input order,
// into b. It returns b, allocating one if nil.
//
//almost:hotpath
func (e Extractor) AllInto(sc *Scratch, g *aig.AIG, b *gnn.Batch) *gnn.Batch {
	sc.kis = g.KeyInputIndicesInto(sc.kis)
	return e.ForKeyInputsInto(sc, g, sc.kis, b)
}

// LabeledInto extracts localities for key inputs kis into b and attaches
// labels from bits (parallel to kis). It returns b, allocating one if
// nil.
func (e Extractor) LabeledInto(sc *Scratch, g *aig.AIG, kis []int, bits []bool, b *gnn.Batch) *gnn.Batch {
	b = e.ForKeyInputsInto(sc, g, kis, b)
	for i, bit := range bits {
		if bit {
			b.Labels[i] = 1
		}
	}
	return b
}
