package subgraph

import (
	"math/rand"
	"testing"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/circuits"
	"github.com/nyu-secml/almost/internal/gnn"
	"github.com/nyu-secml/almost/internal/lock"
)

// requireBatchMatchesScalar checks that batch b is exactly the packed
// form of the scalar graphs gs: offsets, features (==, bitwise), and
// adjacency lists in the scalar append order.
func requireBatchMatchesScalar(t *testing.T, b *gnn.Batch, gs []*gnn.Graph) {
	t.Helper()
	if b.Graphs() != len(gs) {
		t.Fatalf("batch has %d graphs, want %d", b.Graphs(), len(gs))
	}
	at := 0
	for gi, g := range gs {
		if b.Off[gi] != at {
			t.Fatalf("graph %d: Off = %d, want %d", gi, b.Off[gi], at)
		}
		for i := 0; i < g.X.R; i++ {
			br := b.X.Row(at + i)
			sr := g.X.Row(i)
			for j := range sr {
				if br[j] != sr[j] {
					t.Fatalf("graph %d node %d feature %d: batched %v != scalar %v", gi, i, j, br[j], sr[j])
				}
			}
			badj := b.Adj[at+i]
			sadj := g.Adj[i]
			if len(badj) != len(sadj) {
				t.Fatalf("graph %d node %d: degree %d != scalar %d", gi, i, len(badj), len(sadj))
			}
			for k := range sadj {
				if badj[k] != at+sadj[k] {
					t.Fatalf("graph %d node %d neighbor %d: batched %d != scalar %d (+%d)", gi, i, k, badj[k], sadj[k], at)
				}
			}
		}
		at += g.X.R
	}
	if b.Off[len(gs)] != at {
		t.Fatalf("final offset %d, want %d", b.Off[len(gs)], at)
	}
}

// TestBatchedExtractionBitIdentity runs batched extraction against the
// scalar path on every built-in benchmark, locked and unlocked, with a
// single scratch and batch reused throughout — the reuse pattern of the
// engine hot loop.
func TestBatchedExtractionBitIdentity(t *testing.T) {
	ext := DefaultExtractor()
	var sc Scratch
	var b *gnn.Batch
	names := circuits.Names()
	if testing.Short() {
		names = names[:4]
	}
	for _, name := range names {
		// Unlocked: no key inputs, so the batch must come back empty.
		plain := circuits.MustGenerate(name)
		b = ext.AllInto(&sc, plain, b)
		if b.Graphs() != 0 {
			t.Fatalf("%s unlocked: batch has %d graphs, want 0", name, b.Graphs())
		}
		// Locked: every key gate's locality, in key-input order.
		locked, key := lock.Lock(plain, 24, rand.New(rand.NewSource(7)))
		b = ext.AllInto(&sc, locked, b)
		requireBatchMatchesScalar(t, b, ext.All(locked))

		// A strict subset of key inputs, via the labeled forms.
		kis := locked.KeyInputIndices()[:len(key)/2]
		bits := make([]bool, len(kis))
		for i := range bits {
			bits[i] = key[i]
		}
		b = ext.LabeledInto(&sc, locked, kis, bits, b)
		scalar := ext.Labeled(locked, kis, bits)
		requireBatchMatchesScalar(t, b, scalar)
		for i, g := range scalar {
			if b.Labels[i] != g.Label {
				t.Fatalf("%s: label %d = %d, want %d", name, i, b.Labels[i], g.Label)
			}
		}
	}
}

// TestBatchedExtractionAllocs gates the steady state of batched
// extraction: with a warm scratch and batch, re-extracting the same
// netlist performs zero allocations.
func TestBatchedExtractionAllocs(t *testing.T) {
	locked, _ := lockedBench(t, "c880", 32, 3)
	ext := DefaultExtractor()
	var sc Scratch
	b := ext.AllInto(&sc, locked, nil) // warm
	allocs := testing.AllocsPerRun(20, func() {
		b = ext.AllInto(&sc, locked, b)
	})
	if allocs != 0 {
		t.Fatalf("batched extraction steady state allocates %.1f per run, want 0", allocs)
	}
}

// TestBatchedExtractionAcrossGraphSwaps checks that one scratch serves
// alternating netlists of different sizes correctly — the engine reuses
// a worker's scratch across candidate netlists.
func TestBatchedExtractionAcrossGraphSwaps(t *testing.T) {
	ext := DefaultExtractor()
	var sc Scratch
	var b *gnn.Batch
	a1, _ := lockedBench(t, "c1908", 16, 1)
	a2, _ := lockedBench(t, "c432", 2, 2)
	for round := 0; round < 3; round++ {
		for _, g := range []*aig.AIG{a1, a2} {
			b = ext.AllInto(&sc, g, b)
			requireBatchMatchesScalar(t, b, ext.All(g))
		}
	}
}
