// Package subgraph extracts key-gate localities from locked AIGs and
// featurizes them as graphs for the GNN attack models — the "subgraph
// extraction from key-gates" step of OMLA and of Algorithm 1.
//
// For every key input, the k-hop undirected neighborhood of the key
// input node is extracted (key inputs are identifiable in any locked
// netlist, so this is available to the attacker). Nodes carry structural
// features only: kind, fanin edge polarities, fanout degree, level, and
// distance from the key input. Nothing about the key bit leaks into the
// features; the bit is the label to be learned.
package subgraph

import (
	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/gnn"
	"github.com/nyu-secml/almost/internal/nn"
)

// FeatureDim is the width of the per-node feature vector.
const FeatureDim = 11

// Feature indices.
const (
	fConst = iota
	fInput
	fKeyInput
	fAnd
	fFanin0Neg
	fFanin1Neg
	fFanout
	fLevel
	fIsPO
	fDist
	fIsSeed
)

// Extractor configures locality extraction.
type Extractor struct {
	Hops int // neighborhood radius; the paper's localities use small k
}

// DefaultExtractor returns the 2-hop extractor used by default.
func DefaultExtractor() Extractor { return Extractor{Hops: 2} }

// ForKeyInput extracts the locality of the key input with input index ki.
// The returned graph's Label is left 0; callers attach labels.
func (e Extractor) ForKeyInput(g *aig.AIG, ki int, fanouts [][]int, foCounts []int) *gnn.Graph {
	seed := g.Input(ki).Node()
	ids := g.KHopNeighborhood(seed, e.Hops, fanouts)
	idx := make(map[int]int, len(ids))
	for i, id := range ids {
		idx[id] = i
	}
	// BFS distances from seed within the subgraph.
	dist := map[int]int{seed: 0}
	frontier := []int{seed}
	for d := 0; d < e.Hops; d++ {
		var next []int
		for _, id := range frontier {
			var adj []int
			if g.IsAnd(id) {
				f0, f1 := g.Fanins(id)
				adj = append(adj, f0.Node(), f1.Node())
			}
			adj = append(adj, fanouts[id]...)
			for _, a := range adj {
				if _, seen := dist[a]; !seen {
					if _, in := idx[a]; in {
						dist[a] = d + 1
						next = append(next, a)
					}
				}
			}
		}
		frontier = next
	}

	maxLevel := g.NumLevels()
	if maxLevel == 0 {
		maxLevel = 1
	}
	x := nn.NewMatrix(len(ids), FeatureDim)
	adj := make([][]int, len(ids))
	poNodes := map[int]bool{}
	for i := 0; i < g.NumOutputs(); i++ {
		poNodes[g.Output(i).Node()] = true
	}
	for i, id := range ids {
		row := x.Row(i)
		switch {
		case g.IsConst(id):
			row[fConst] = 1
		case g.IsInput(id):
			if ii := g.InputIndexOfNode(id); ii >= 0 && g.InputIsKey(ii) {
				row[fKeyInput] = 1
			} else {
				row[fInput] = 1
			}
		default:
			row[fAnd] = 1
			f0, f1 := g.Fanins(id)
			if f0.Neg() {
				row[fFanin0Neg] = 1
			}
			if f1.Neg() {
				row[fFanin1Neg] = 1
			}
			// Undirected edges to fanins inside the subgraph.
			for _, f := range []aig.Lit{f0, f1} {
				if j, ok := idx[f.Node()]; ok {
					adj[i] = append(adj[i], j)
					adj[j] = append(adj[j], i)
				}
			}
		}
		fo := foCounts[id]
		if fo > 8 {
			fo = 8
		}
		row[fFanout] = float64(fo) / 8
		row[fLevel] = float64(g.Level(id)) / float64(maxLevel)
		if poNodes[id] {
			row[fIsPO] = 1
		}
		row[fDist] = float64(dist[id]) / float64(max(e.Hops, 1))
		if id == seed {
			row[fIsSeed] = 1
		}
	}
	return &gnn.Graph{X: x, Adj: adj}
}

// ForKeyInputs extracts localities for the given key-input indices.
func (e Extractor) ForKeyInputs(g *aig.AIG, kis []int) []*gnn.Graph {
	fanouts := g.Fanouts()
	foCounts := g.FanoutCounts()
	out := make([]*gnn.Graph, len(kis))
	for i, ki := range kis {
		out[i] = e.ForKeyInput(g, ki, fanouts, foCounts)
	}
	return out
}

// All extracts one locality per key input of g, in key-input order.
func (e Extractor) All(g *aig.AIG) []*gnn.Graph {
	return e.ForKeyInputs(g, g.KeyInputIndices())
}

// Labeled extracts localities for key inputs kis and attaches labels from
// bits (parallel to kis).
func (e Extractor) Labeled(g *aig.AIG, kis []int, bits []bool) []*gnn.Graph {
	gs := e.ForKeyInputs(g, kis)
	for i := range gs {
		if bits[i] {
			gs[i].Label = 1
		}
	}
	return gs
}
