package subgraph

import (
	"math/rand"
	"testing"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/circuits"
	"github.com/nyu-secml/almost/internal/lock"
)

func lockedBench(t *testing.T, name string, keySize int, seed int64) (*aig.AIG, lock.Key) {
	t.Helper()
	g := circuits.MustGenerate(name)
	return lock.Lock(g, keySize, rand.New(rand.NewSource(seed)))
}

func TestAllExtractsOnePerKeyInput(t *testing.T) {
	locked, _ := lockedBench(t, "c432", 12, 1)
	gs := DefaultExtractor().All(locked)
	if len(gs) != 12 {
		t.Fatalf("got %d localities, want 12", len(gs))
	}
	for i, g := range gs {
		if g.X.R == 0 {
			t.Fatalf("locality %d empty", i)
		}
		if g.X.C != FeatureDim {
			t.Fatalf("feature dim = %d", g.X.C)
		}
		if len(g.Adj) != g.X.R {
			t.Fatalf("adjacency size mismatch")
		}
	}
}

func TestSeedFeature(t *testing.T) {
	locked, _ := lockedBench(t, "c432", 4, 2)
	gs := DefaultExtractor().All(locked)
	for gi, g := range gs {
		seeds, keyNodes := 0, 0
		for i := 0; i < g.X.R; i++ {
			if g.X.At(i, fIsSeed) == 1 {
				seeds++
				if g.X.At(i, fKeyInput) != 1 {
					t.Fatalf("locality %d: seed is not a key input", gi)
				}
			}
			if g.X.At(i, fKeyInput) == 1 {
				keyNodes++
			}
		}
		if seeds != 1 {
			t.Fatalf("locality %d: %d seed nodes", gi, seeds)
		}
		if keyNodes < 1 {
			t.Fatalf("locality %d: no key-input node", gi)
		}
	}
}

func TestAdjacencySymmetric(t *testing.T) {
	locked, _ := lockedBench(t, "c880", 8, 3)
	gs := Extractor{Hops: 3}.All(locked)
	for gi, g := range gs {
		for i, nbrs := range g.Adj {
			for _, j := range nbrs {
				found := false
				for _, back := range g.Adj[j] {
					if back == i {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("locality %d: edge %d->%d not symmetric", gi, i, j)
				}
			}
		}
	}
}

func TestHopsControlSize(t *testing.T) {
	locked, _ := lockedBench(t, "c880", 8, 4)
	small := Extractor{Hops: 1}.All(locked)
	big := Extractor{Hops: 3}.All(locked)
	for i := range small {
		if small[i].X.R > big[i].X.R {
			t.Fatalf("locality %d: 1-hop larger than 3-hop", i)
		}
	}
}

func TestLabeled(t *testing.T) {
	locked, key := lockedBench(t, "c432", 6, 5)
	kis := locked.KeyInputIndices()
	gs := DefaultExtractor().Labeled(locked, kis, key)
	for i, g := range gs {
		want := 0
		if key[i] {
			want = 1
		}
		if g.Label != want {
			t.Fatalf("label %d = %d, want %d", i, g.Label, want)
		}
	}
}

func TestFeaturesDoNotLeakKeyBit(t *testing.T) {
	// Two lockings identical except for the key bits (same seed for target
	// selection): in the AIG representation, XOR vs XNOR differs only by an
	// output-edge complement, which shows up in *fanin polarity* features
	// of downstream nodes — structure the attack is allowed to see. What
	// must NOT happen is a feature column directly encoding the label:
	// check that no single feature equals the key bit across localities.
	g := circuits.MustGenerate("c499")
	locked, key := lock.Lock(g, 32, rand.New(rand.NewSource(6)))
	gs := DefaultExtractor().All(locked)
	for f := 0; f < FeatureDim; f++ {
		matches := 0
		for i := range gs {
			// Use the seed node's feature value as the candidate leak.
			var v float64
			for r := 0; r < gs[i].X.R; r++ {
				if gs[i].X.At(r, fIsSeed) == 1 {
					v = gs[i].X.At(r, f)
				}
			}
			bit := 0.0
			if key[i] {
				bit = 1.0
			}
			if v == bit {
				matches++
			}
		}
		if matches == len(gs) && f != fKeyInput && f != fIsSeed {
			t.Fatalf("feature %d perfectly matches key bits — label leak", f)
		}
	}
}

func TestDeterministicExtraction(t *testing.T) {
	locked, _ := lockedBench(t, "c432", 6, 7)
	g1 := DefaultExtractor().All(locked)
	g2 := DefaultExtractor().All(locked)
	for i := range g1 {
		if g1[i].X.R != g2[i].X.R {
			t.Fatalf("nondeterministic extraction")
		}
		for j := range g1[i].X.D {
			if g1[i].X.D[j] != g2[i].X.D[j] {
				t.Fatalf("nondeterministic features")
			}
		}
	}
}

func BenchmarkExtractC7552(b *testing.B) {
	g := circuits.MustGenerate("c7552")
	locked, _ := lock.Lock(g, 128, rand.New(rand.NewSource(8)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DefaultExtractor().All(locked)
	}
}
