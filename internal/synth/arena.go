package synth

import (
	"github.com/nyu-secml/almost/internal/aig"
)

// Arena bundles every piece of scratch state the synthesis transforms
// need — rebuilders, recycled graph storage, simulation buffers, cut
// storage, window truth-table memos, and the ISOP cost/cover memo — so a
// recipe evaluated thousands of times (the paper's SA hot loop) stops
// paying per-pass allocations. All seven transforms and Recipe.Run accept
// an arena; passing nil makes them allocate a private one, which
// preserves the historical behaviour at the historical cost.
//
// An arena is NOT safe for concurrent use: each engine worker owns one.
// Results are bit-for-bit identical with and without an arena — the arena
// only changes where memory comes from, never what the transforms
// compute.
type Arena struct {
	rb, crb aig.Rebuilder // transform rebuilder + cleanup rebuilder
	free    []*aig.AIG    // recycled graph storage (all Reset)
	sim     aig.SimScratch

	// Topological-order and fanout-count caches for the current source
	// graph, keyed by (pointer, generation, node count).
	topoOwner *aig.AIG
	topoGen   uint64
	topoN     int
	live      []bool
	order     []int
	fcOwner   *aig.AIG
	fcGen     uint64
	fcN       int
	fc        []int

	// Epoch-marked node scratch shared by cone/MFFC walks and the window
	// truth-table evaluator. A nextEpoch call invalidates every array at
	// once, so each bump starts a fresh logical mark set.
	epoch    int32
	mark     []int32 // cone membership
	mffcMark []int32 // MFFC membership
	ref      []int32 // MFFC reference counts
	refEpoch []int32
	ttMark   []int32
	ttMemo   []uint64
	stack    []int

	ttLeaves []int // leaves of the window currently being evaluated

	// ISOP plan memo: cost, polarity choice, and the chosen cover per
	// (truth table, variable count). Persists across passes and recipes —
	// the annealer revisits the same local functions constantly.
	plans      map[ttPlanKey]ttPlan
	costLeaves []aig.Lit

	// SOP construction buffers.
	sopTerms []aig.Lit
	sopLits  []aig.Lit
	sopInv   []aig.Lit

	// Cut enumeration storage: per-node cut lists plus pooled leaf and
	// list arrays, reclaimed wholesale at the start of every enumeration.
	cuts        [][]Cut
	cutLeafAll  [][]int
	cutLeafFree [][]int
	cutListAll  [][]Cut
	cutListFree [][]Cut
	cutLimit    int
	mergeBuf    []int

	// Balance / refactor buffers.
	bools     []bool
	conj      []aig.Lit
	dstLits   []aig.Lit
	winLeaves []int

	// Resub buffers.
	byKey  map[uint64][]int
	negBuf []uint64

	// Windowed-transform buffers (window.go): dirty-region live flags,
	// traversal order, substitution map, and fanout counts (indexed by
	// id - watermark), dirty output indices, the balance absorption
	// flags, and the window resub table with its leaf storage. They stay
	// valid across the steps of a windowed recipe — the region view is
	// recomputed per step, but the storage never reallocates once warm.
	wLive      []bool
	wOrder     []int
	wMap       []aig.Lit
	wFc        []int
	wOuts      []int
	wAbs       []bool
	wEnt       []winEntry
	wLeafStore []int
}

// NewArena returns an empty arena. Buffers are grown lazily on first use.
func NewArena() *Arena { return &Arena{} }

// ensure returns a, or a private throwaway arena when a is nil.
func ensure(a *Arena) *Arena {
	if a == nil {
		return &Arena{}
	}
	return a
}

// Reset drops the arena's references to previously seen graphs (identity
// caches and the free list keep recycled storage alive otherwise is the
// point — Reset is for callers that want the arena to stop referencing a
// graph, not for reclaiming memory). The ISOP memo survives: it is keyed
// by pure function values, never by graph identity.
func (a *Arena) Reset() {
	a.topoOwner = nil
	a.fcOwner = nil
	a.sim.Reset()
	a.rb.Src, a.rb.Dst = nil, nil
	a.crb.Src, a.crb.Dst = nil, nil
}

// grab returns a recycled (already Reset) graph, or a fresh one.
func (a *Arena) grab() *aig.AIG {
	if n := len(a.free); n > 0 {
		g := a.free[n-1]
		a.free = a.free[:n-1]
		return g
	}
	return aig.New()
}

// Recycle hands a graph's storage back to the arena for reuse by later
// passes. The caller must own g exclusively and must not use it again:
// the graph is Reset immediately (which also invalidates any scratch
// schedule or arena cache keyed on it). Recycling graphs the arena never
// produced is fine — core's evaluation loop hands back each scored
// netlist this way.
func (a *Arena) Recycle(g *aig.AIG) {
	if g == nil {
		return
	}
	g.Reset()
	a.free = append(a.free, g)
}

// begin starts a rebuild pass over src into recycled storage.
func (a *Arena) begin(src *aig.AIG) *aig.Rebuilder {
	a.rb.ResetInto(src, a.grab())
	return &a.rb
}

// finishCleanup completes the pass begun by begin: copy the outputs,
// then strip dangling nodes with a second rebuild (the Finish().Cleanup()
// of the allocating era), recycling the intermediate graph.
func (a *Arena) finishCleanup() *aig.AIG {
	fin := a.rb.Finish()
	a.crb.ResetInto(fin, a.grab())
	out := a.crb.Finish()
	a.Recycle(fin)
	a.rb.Src, a.rb.Dst = nil, nil
	a.crb.Src, a.crb.Dst = nil, nil
	return out
}

// topo returns the cached topological order of g's live AND nodes.
func (a *Arena) topo(g *aig.AIG) []int {
	if a.topoOwner == g && a.topoGen == g.Generation() && a.topoN == g.NumNodes() {
		return a.order
	}
	a.topoOwner, a.topoGen, a.topoN = g, g.Generation(), g.NumNodes()
	a.live, a.order = g.TopoOrderInto(a.live, a.order)
	return a.order
}

// fanoutCounts returns the cached fanout counts of g.
func (a *Arena) fanoutCounts(g *aig.AIG) []int {
	if a.fcOwner == g && a.fcGen == g.Generation() && a.fcN == g.NumNodes() {
		return a.fc
	}
	a.fcOwner, a.fcGen, a.fcN = g, g.Generation(), g.NumNodes()
	a.fc = g.FanoutCountsInto(a.fc)
	return a.fc
}

// boolNodes returns a cleared bool-per-node buffer.
func (a *Arena) boolNodes(n int) []bool {
	if cap(a.bools) < n {
		a.bools = make([]bool, n)
	}
	a.bools = a.bools[:n]
	for i := range a.bools {
		a.bools[i] = false
	}
	return a.bools
}

// nextEpoch grows the epoch-marked arrays to cover n nodes and starts a
// fresh mark set. On (rare) counter wraparound every array is re-zeroed
// so stale marks can never collide with a reused epoch value.
func (a *Arena) nextEpoch(n int) int32 {
	if len(a.mark) < n {
		a.mark = make([]int32, n)
		a.mffcMark = make([]int32, n)
		a.ref = make([]int32, n)
		a.refEpoch = make([]int32, n)
		a.ttMark = make([]int32, n)
		a.ttMemo = make([]uint64, n)
	}
	a.epoch++
	if a.epoch <= 0 {
		for i := range a.mark {
			a.mark[i], a.mffcMark[i], a.refEpoch[i], a.ttMark[i] = 0, 0, 0, 0
		}
		a.epoch = 1
	}
	return a.epoch
}

// --- window truth tables -------------------------------------------------

// windowTT computes the truth table of root as a function of the given
// leaf nodes (at most 6), exactly as (*aig.AIG).WindowTT but with
// epoch-marked memo arrays instead of per-call maps.
func (a *Arena) windowTT(g *aig.AIG, root int, leaves []int) (uint64, bool) {
	if len(leaves) > 6 {
		return 0, false
	}
	e := a.nextEpoch(g.NumNodes())
	a.ttLeaves = append(a.ttLeaves[:0], leaves...)
	v, ok := a.evalTT(g, root, e)
	if !ok {
		return 0, false
	}
	return v & aig.TTMask(len(leaves)), true
}

func (a *Arena) evalTT(g *aig.AIG, id int, e int32) (uint64, bool) {
	for i, l := range a.ttLeaves {
		if l == id {
			return varMask(i), true
		}
	}
	if a.ttMark[id] == e {
		return a.ttMemo[id], true
	}
	switch g.Kind(id) {
	case aig.KindConst:
		return 0, true
	case aig.KindInput:
		return 0, false // input that is not a leaf: window is not closed
	}
	f0, f1 := g.Fanins(id)
	va, ok := a.evalTT(g, f0.Node(), e)
	if !ok {
		return 0, false
	}
	if f0.Neg() {
		va = ^va
	}
	vb, ok := a.evalTT(g, f1.Node(), e)
	if !ok {
		return 0, false
	}
	if f1.Neg() {
		vb = ^vb
	}
	v := va & vb
	a.ttMark[id] = e
	a.ttMemo[id] = v
	return v, true
}

// --- cone / MFFC intersection -------------------------------------------

// savedNodes counts how many AND nodes die if root is reimplemented over
// the cut leaves: the intersection of root's MFFC with the cut cone.
// Identical in result to the historical coneNodes/MFFC map walk, with
// epoch marks instead of maps.
func (a *Arena) savedNodes(g *aig.AIG, root int, leaves []int, fc []int) int {
	e := a.nextEpoch(g.NumNodes())

	// Cone: AND nodes strictly between root and the leaves, marked in
	// a.mark. Iterative DFS — the visit order does not affect the set.
	a.stack = append(a.stack[:0], root)
	for len(a.stack) > 0 {
		id := a.stack[len(a.stack)-1]
		a.stack = a.stack[:len(a.stack)-1]
		isLeaf := false
		for _, l := range leaves {
			if l == id {
				isLeaf = true
				break
			}
		}
		if isLeaf || a.mark[id] == e || !g.IsAnd(id) {
			continue
		}
		a.mark[id] = e
		f0, f1 := g.Fanins(id)
		a.stack = append(a.stack, f0.Node(), f1.Node())
	}

	// MFFC: reference-count fanins as if the root were deleted, counting
	// members that also carry the cone mark.
	if !g.IsAnd(root) {
		return 0
	}
	saved := 0
	if a.mark[root] == e {
		saved++
	}
	a.mffcMark[root] = e
	a.collectMFFC(g, root, fc, e, &saved)
	return saved
}

func (a *Arena) collectMFFC(g *aig.AIG, id int, fc []int, e int32, saved *int) {
	f0, f1 := g.Fanins(id)
	for _, f := range [2]aig.Lit{f0, f1} {
		fid := f.Node()
		if !g.IsAnd(fid) {
			continue
		}
		if a.refEpoch[fid] != e {
			a.refEpoch[fid] = e
			a.ref[fid] = 0
		}
		a.ref[fid]++
		if int(a.ref[fid]) == fc[fid] && a.mffcMark[fid] != e {
			a.mffcMark[fid] = e
			if a.mark[fid] == e {
				*saved++
			}
			a.collectMFFC(g, fid, fc, e, saved)
		}
	}
}

// --- ISOP plans ----------------------------------------------------------

type ttPlanKey struct {
	tt uint64
	n  int8
}

// ttPlan caches everything SynthTT derives from a (tt, n) pair: the
// scratch-graph AND cost (EstimateTTCost's value), whether the
// complemented cover is cheaper, and the chosen cube cover itself.
type ttPlan struct {
	cost  int
	neg   bool
	cover []cube
}

// trivialTT reports whether tt is constant or a single (possibly
// complemented) variable — the cases SynthTT resolves without building
// anything, at cost 0.
func trivialTT(tt uint64, n int) bool {
	mask := aig.TTMask(n)
	tt &= mask
	if tt == 0 || tt == mask {
		return true
	}
	for v := 0; v < n; v++ {
		if tt == varMask(v)&mask || tt == ^varMask(v)&mask {
			return true
		}
	}
	return false
}

// ttPlanFor memoizes the ISOP plan of (tt, n). plan.cost equals
// EstimateTTCost(tt, n) for every input.
func (a *Arena) ttPlanFor(tt uint64, n int) ttPlan {
	mask := aig.TTMask(n)
	tt &= mask
	if trivialTT(tt, n) {
		return ttPlan{}
	}
	key := ttPlanKey{tt: tt, n: int8(n)}
	if a.plans == nil {
		a.plans = make(map[ttPlanKey]ttPlan)
	}
	if p, ok := a.plans[key]; ok {
		return p
	}
	pos := isop(tt, tt, n)
	neg := isop(^tt&mask, ^tt&mask, n)
	cp := a.measureSOP(pos, n)
	cn := a.measureSOP(neg, n)
	p := ttPlan{cost: cp, cover: pos}
	if cp > cn {
		p = ttPlan{cost: cn, neg: true, cover: neg}
	}
	a.plans[key] = p
	return p
}

// measureSOP builds the cover on a recycled scratch graph and returns its
// AND-node count — sopCost with pooled storage.
func (a *Arena) measureSOP(cs []cube, n int) int {
	g := a.grab()
	if cap(a.costLeaves) < n {
		a.costLeaves = make([]aig.Lit, n)
	}
	leaves := a.costLeaves[:n]
	for i := range leaves {
		leaves[i] = g.AddInput("l")
	}
	a.buildSOP(g, cs, leaves)
	c := g.NumAnds()
	a.Recycle(g)
	return c
}

// buildSOP constructs OR-of-AND cubes over the leaf literals in g with
// pooled term/literal buffers — structurally identical to the package
// buildSOP.
func (a *Arena) buildSOP(g *aig.AIG, cs []cube, leaves []aig.Lit) aig.Lit {
	terms := a.sopTerms[:0]
	for _, c := range cs {
		lits := a.sopLits[:0]
		for v := 0; v < len(leaves); v++ {
			if c.mask&(1<<uint(v)) == 0 {
				continue
			}
			lits = append(lits, leaves[v].NotIf(c.value&(1<<uint(v)) == 0))
		}
		a.sopLits = lits
		terms = append(terms, g.AndN(lits))
	}
	a.sopTerms = terms
	inv := a.sopInv[:0]
	for _, t := range terms {
		inv = append(inv, t.Not())
	}
	a.sopInv = inv
	return g.AndN(inv).Not()
}

// synthTT builds an AIG implementation of tt over the leaf literals in g,
// identical in structure to SynthTT but driven by the memoized plan.
func (a *Arena) synthTT(g *aig.AIG, tt uint64, leaves []aig.Lit) aig.Lit {
	n := len(leaves)
	mask := aig.TTMask(n)
	tt &= mask
	switch tt {
	case 0:
		return aig.False
	case mask:
		return aig.True
	}
	for v := 0; v < n; v++ {
		if tt == varMask(v)&mask {
			return leaves[v]
		}
		if tt == ^varMask(v)&mask {
			return leaves[v].Not()
		}
	}
	p := a.ttPlanFor(tt, n)
	root := a.buildSOP(g, p.cover, leaves)
	if p.neg {
		return root.Not()
	}
	return root
}

// --- cut enumeration -----------------------------------------------------

// leafArr returns a pooled leaf array with capacity >= limit.
func (a *Arena) leafArr(limit int) []int {
	if n := len(a.cutLeafFree); n > 0 {
		s := a.cutLeafFree[n-1]
		a.cutLeafFree = a.cutLeafFree[:n-1]
		return s[:0]
	}
	s := make([]int, 0, limit)
	a.cutLeafAll = append(a.cutLeafAll, s)
	return s
}

func (a *Arena) putLeafArr(s []int) {
	a.cutLeafFree = append(a.cutLeafFree, s[:0])
}

// listArr returns a pooled cut-list array with capacity cutsPerNode+1.
func (a *Arena) listArr() []Cut {
	if n := len(a.cutListFree); n > 0 {
		s := a.cutListFree[n-1]
		a.cutListFree = a.cutListFree[:n-1]
		return s[:0]
	}
	s := make([]Cut, 0, cutsPerNode+1)
	a.cutListAll = append(a.cutListAll, s)
	return s
}

// enumerateCuts computes up to cutsPerNode k-feasible cuts for every live
// AND node, exactly as EnumerateCuts, into arena-pooled storage indexed
// by node ID. The returned lists (and their leaf slices) are valid until
// the next enumerateCuts call on this arena.
func (a *Arena) enumerateCuts(g *aig.AIG, limit int) [][]Cut {
	// Reclaim every array handed out by the previous enumeration.
	if a.cutLimit != limit {
		// Pool entries are sized for a specific limit; a different limit
		// (never happens with the built-in transforms) drops the pool.
		a.cutLeafAll, a.cutLeafFree = nil, nil
		a.cutLimit = limit
	}
	a.cutLeafFree = append(a.cutLeafFree[:0], a.cutLeafAll...)
	a.cutListFree = append(a.cutListFree[:0], a.cutListAll...)
	if cap(a.mergeBuf) < 2*limit+2 {
		a.mergeBuf = make([]int, 0, 2*limit+2)
	}

	n := g.NumNodes()
	if cap(a.cuts) < n {
		a.cuts = make([][]Cut, n)
	}
	a.cuts = a.cuts[:n]
	for i := range a.cuts {
		a.cuts[i] = nil
	}

	// unit builds the trivial cut {id} from the pool.
	unit := func(id int) Cut {
		s := a.leafArr(limit)
		return Cut{Leaves: append(s, id)}
	}
	for _, id := range a.topo(g) {
		f0, f1 := g.Fanins(id)
		var unitBuf0, unitBuf1 [1]Cut
		c0 := a.cuts[f0.Node()]
		if c0 == nil {
			unitBuf0[0] = unit(f0.Node())
			c0 = unitBuf0[:1]
		}
		c1 := a.cuts[f1.Node()]
		if c1 == nil {
			unitBuf1[0] = unit(f1.Node())
			c1 = unitBuf1[:1]
		}
		out := a.listArr()
	merge:
		for _, x := range c0 {
			for _, y := range c1 {
				m, ok := mergeCutsInto(a.mergeBuf[:0], x, y, limit)
				a.mergeBuf = m[:0]
				if !ok {
					continue
				}
				mc := Cut{Leaves: m}
				for k := 0; k < len(out); k++ {
					if dominates(out[k], mc) {
						continue merge
					}
				}
				// Remove cuts dominated by the new one, recycling their
				// leaf arrays.
				kept := out[:0]
				for _, ex := range out {
					if dominates(mc, ex) {
						a.putLeafArr(ex.Leaves)
						continue
					}
					kept = append(kept, ex)
				}
				out = kept
				persisted := append(a.leafArr(limit), m...)
				out = append(out, Cut{Leaves: persisted})
				if len(out) >= cutsPerNode {
					break merge
				}
			}
		}
		out = append(out, unit(id))
		a.cuts[id] = out
	}
	return a.cuts
}
