package synth

import (
	"math/rand"
	"testing"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/circuits"
)

// sameAIG reports full structural identity: node-for-node, name-for-name.
// Far stronger than functional equivalence — it pins the arena paths to
// the allocating wrappers bit for bit, which is what keeps engine
// memoization and search trajectories independent of who owns the
// memory.
func sameAIG(t *testing.T, label string, a, b *aig.AIG) {
	t.Helper()
	if a.NumNodes() != b.NumNodes() {
		t.Fatalf("%s: node count %d != %d", label, a.NumNodes(), b.NumNodes())
	}
	for id := 0; id < a.NumNodes(); id++ {
		if a.Kind(id) != b.Kind(id) {
			t.Fatalf("%s: node %d kind %v != %v", label, id, a.Kind(id), b.Kind(id))
		}
		if a.IsAnd(id) {
			a0, a1 := a.Fanins(id)
			b0, b1 := b.Fanins(id)
			if a0 != b0 || a1 != b1 {
				t.Fatalf("%s: node %d fanins (%v,%v) != (%v,%v)", label, id, a0, a1, b0, b1)
			}
		}
	}
	if a.NumInputs() != b.NumInputs() || a.NumOutputs() != b.NumOutputs() {
		t.Fatalf("%s: interface mismatch", label)
	}
	for i := 0; i < a.NumInputs(); i++ {
		if a.InputName(i) != b.InputName(i) || a.InputIsKey(i) != b.InputIsKey(i) {
			t.Fatalf("%s: input %d differs", label, i)
		}
	}
	for i := 0; i < a.NumOutputs(); i++ {
		if a.Output(i) != b.Output(i) || a.OutputName(i) != b.OutputName(i) {
			t.Fatalf("%s: output %d differs", label, i)
		}
	}
}

// lockLike adds key inputs XOR-mixed into the logic without importing
// internal/lock (which depends on this package's siblings): enough to
// exercise key-input preservation through every arena path.
func lockLike(g *aig.AIG, bits int, rng *rand.Rand) *aig.AIG {
	rb := aig.NewRebuilder(g)
	keys := make([]aig.Lit, bits)
	for i := range keys {
		keys[i] = rb.Dst.AddKeyInput("keyinput")
	}
	order := g.TopoOrder()
	targets := map[int]int{}
	for i := 0; i < bits && len(order) > 0; i++ {
		targets[order[rng.Intn(len(order))]] = i
	}
	for _, id := range order {
		f0, f1 := g.Fanins(id)
		nl := rb.Dst.And(rb.LitOf(f0), rb.LitOf(f1))
		if ki, ok := targets[id]; ok {
			nl = rb.Dst.Xor(nl, keys[ki])
		}
		rb.Map(id, nl)
	}
	return rb.Finish()
}

// TestArenaTransformsMatchWrappers is the tentpole equivalence gate:
// every transform and a random recipe, on every built-in circuit, locked
// and unlocked, must produce the identical netlist through a shared
// arena (with recycling) and through the allocating nil-arena wrappers.
func TestArenaTransformsMatchWrappers(t *testing.T) {
	names := circuits.Names()
	if testing.Short() {
		names = []string{"c432", "c499"}
	}
	shared := NewArena()
	for _, name := range names {
		base := circuits.MustGenerate(name)
		locked := lockLike(base, 8, rand.New(rand.NewSource(1)))
		for _, tc := range []struct {
			label string
			g     *aig.AIG
		}{
			{name, base},
			{name + "+lock", locked},
		} {
			for _, s := range AllSteps() {
				if testing.Short() && (s == StepResub || s == StepResubZ) && name != "c432" {
					continue // SAT-heavy; one circuit covers the path
				}
				want := s.Apply(tc.g)
				got := s.Run(tc.g, shared)
				sameAIG(t, tc.label+"/"+s.String(), got, want)
				shared.Recycle(got)
			}
			r := RandomRecipe(rand.New(rand.NewSource(9)), 6)
			want := r.Apply(tc.g)
			got := r.Run(tc.g, shared)
			sameAIG(t, tc.label+"/"+r.String(), got, want)
			shared.Recycle(got)
		}
	}
}

// TestArenaReuseAcrossRecipesIsStateless pins that a warmed, heavily
// reused arena gives the same answer as a fresh one — recycled storage
// must never leak state into results.
func TestArenaReuseAcrossRecipesIsStateless(t *testing.T) {
	g := circuits.MustGenerate("c432")
	rng := rand.New(rand.NewSource(17))
	shared := NewArena()
	for i := 0; i < 4; i++ {
		r := RandomRecipe(rng, 5)
		want := r.Run(g, NewArena())
		got := r.Run(g, shared)
		sameAIG(t, r.String(), got, want)
		shared.Recycle(got)
		shared.Recycle(want)
	}
}

// TestEnumerateCutsArenaMatchesMap pins the pooled cut enumeration to
// the exported map wrapper.
func TestEnumerateCutsArenaMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := randomAIG(rng, 9, 3, 90)
	want := EnumerateCuts(g, 4)
	a := NewArena()
	got := a.enumerateCuts(g, 4)
	for id, cs := range want {
		if len(got[id]) != len(cs) {
			t.Fatalf("node %d: %d cuts != %d", id, len(got[id]), len(cs))
		}
		for k := range cs {
			if len(got[id][k].Leaves) != len(cs[k].Leaves) {
				t.Fatalf("node %d cut %d: leaf count differs", id, k)
			}
			for j := range cs[k].Leaves {
				if got[id][k].Leaves[j] != cs[k].Leaves[j] {
					t.Fatalf("node %d cut %d leaf %d differs", id, k, j)
				}
			}
		}
	}
}

// TestTTPlanMatchesEstimateTTCost pins the memoized ISOP plan to the
// exported estimator across exhaustive small functions and random larger
// ones.
func TestTTPlanMatchesEstimateTTCost(t *testing.T) {
	a := NewArena()
	for tt := uint64(0); tt < 256; tt++ { // all 3-var functions
		if got, want := a.ttPlanFor(tt, 3).cost, EstimateTTCost(tt, 3); got != want {
			t.Fatalf("tt=%x n=3: plan cost %d != %d", tt, got, want)
		}
	}
	rng := rand.New(rand.NewSource(29))
	for n := 4; n <= 6; n++ {
		for trial := 0; trial < 40; trial++ {
			tt := rng.Uint64() & aig.TTMask(n)
			got, want := a.ttPlanFor(tt, n).cost, EstimateTTCost(tt, n)
			if got != want {
				t.Fatalf("tt=%x n=%d: plan cost %d != %d", tt, n, got, want)
			}
			// Memoized second lookup must agree with itself.
			if a.ttPlanFor(tt, n).cost != got {
				t.Fatalf("tt=%x n=%d: memo unstable", tt, n)
			}
		}
	}
}

// TestWindowTTArenaMatchesAIG pins the epoch-marked window evaluator to
// the map-based aig method.
func TestWindowTTArenaMatchesAIG(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := randomAIG(rng, 8, 3, 70)
	a := NewArena()
	cuts := a.enumerateCuts(g, 4)
	for _, id := range g.TopoOrder() {
		for _, cut := range cuts[id] {
			wantTT, wantOK := g.WindowTT(id, cut.Leaves)
			gotTT, gotOK := a.windowTT(g, id, cut.Leaves)
			if wantOK != gotOK || (wantOK && wantTT != gotTT) {
				t.Fatalf("node %d cut %v: (%x,%v) != (%x,%v)", id, cut.Leaves, gotTT, gotOK, wantTT, wantOK)
			}
		}
	}
}

// TestSavedNodesArenaMatchesMaps pins the epoch-marked cone/MFFC
// intersection to the historical map-based computation, recreated here.
func TestSavedNodesArenaMatchesMaps(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	g := randomAIG(rng, 8, 3, 80)
	fc := g.FanoutCounts()
	a := NewArena()
	cuts := a.enumerateCuts(g, 4)
	refSaved := func(root int, leaves []int) int {
		leafSet := map[int]bool{}
		for _, l := range leaves {
			leafSet[l] = true
		}
		cone := map[int]bool{}
		var walk func(id int)
		walk = func(id int) {
			if leafSet[id] || cone[id] || !g.IsAnd(id) {
				return
			}
			cone[id] = true
			f0, f1 := g.Fanins(id)
			walk(f0.Node())
			walk(f1.Node())
		}
		walk(root)
		saved := 0
		for _, id := range g.MFFC(root, fc) {
			if cone[id] {
				saved++
			}
		}
		return saved
	}
	for _, id := range g.TopoOrder() {
		for _, cut := range cuts[id] {
			if want, got := refSaved(id, cut.Leaves), a.savedNodes(g, id, cut.Leaves, fc); want != got {
				t.Fatalf("node %d cut %v: saved %d != %d", id, cut.Leaves, got, want)
			}
		}
	}
}

// TestRecipeRunSteadyStateAllocs is the allocation-regression gate for
// the arena-backed synthesis path: after warmup, a full balance pass
// into recycled storage must stay within a tiny constant allocation
// budget (the transform closures; no per-node or per-graph storage).
func TestRecipeRunSteadyStateAllocs(t *testing.T) {
	g := circuits.MustGenerate("c432")
	a := NewArena()
	for i := 0; i < 3; i++ {
		a.Recycle(Balance(g, a)) // warm every buffer on the real circuit
	}
	n := testing.AllocsPerRun(10, func() {
		a.Recycle(Balance(g, a))
	})
	// One conjuncts closure per pass is expected; per-node or per-graph
	// allocations would show up as hundreds.
	if n > 8 {
		t.Fatalf("steady-state Balance allocates %.1f objects per run, want <= 8", n)
	}
}
