package synth

import "github.com/nyu-secml/almost/internal/aig"

// cutSize is the leaf limit for rewrite's cut enumeration (ABC uses
// 4-input cuts for rewriting).
const cutSize = 4

// cutsPerNode bounds the number of cuts kept per node (priority cuts).
const cutsPerNode = 8

// Cut is a set of leaf node IDs (sorted) that separates a root from the
// rest of the graph.
type Cut struct {
	Leaves []int
}

// mergeCuts unions two cuts, returning ok=false when the result exceeds
// the leaf limit.
func mergeCuts(a, b Cut, limit int) (Cut, bool) {
	out := make([]int, 0, len(a.Leaves)+len(b.Leaves))
	i, j := 0, 0
	for i < len(a.Leaves) && j < len(b.Leaves) {
		switch {
		case a.Leaves[i] == b.Leaves[j]:
			out = append(out, a.Leaves[i])
			i++
			j++
		case a.Leaves[i] < b.Leaves[j]:
			out = append(out, a.Leaves[i])
			i++
		default:
			out = append(out, b.Leaves[j])
			j++
		}
		if len(out) > limit {
			return Cut{}, false
		}
	}
	out = append(out, a.Leaves[i:]...)
	out = append(out, b.Leaves[j:]...)
	if len(out) > limit {
		return Cut{}, false
	}
	return Cut{Leaves: out}, true
}

func equalCuts(a, b Cut) bool {
	if len(a.Leaves) != len(b.Leaves) {
		return false
	}
	for i := range a.Leaves {
		if a.Leaves[i] != b.Leaves[i] {
			return false
		}
	}
	return true
}

// dominates reports whether cut a's leaves are a subset of cut b's.
func dominates(a, b Cut) bool {
	if len(a.Leaves) > len(b.Leaves) {
		return false
	}
	i := 0
	for _, l := range b.Leaves {
		if i < len(a.Leaves) && a.Leaves[i] == l {
			i++
		}
	}
	return i == len(a.Leaves)
}

// EnumerateCuts computes up to cutsPerNode k-feasible cuts for every live
// AND node, bottom-up. The trivial cut {node} is always included for
// inputs and serves as the unit cut during merging; for AND nodes it is
// appended last so rewriting prefers non-trivial cuts.
func EnumerateCuts(g *aig.AIG, limit int) map[int][]Cut {
	cuts := map[int][]Cut{}
	unit := func(id int) []Cut { return []Cut{{Leaves: []int{id}}} }
	for _, id := range g.TopoOrder() {
		f0, f1 := g.Fanins(id)
		c0 := cuts[f0.Node()]
		if c0 == nil {
			c0 = unit(f0.Node())
		}
		c1 := cuts[f1.Node()]
		if c1 == nil {
			c1 = unit(f1.Node())
		}
		var out []Cut
	merge:
		for _, a := range c0 {
			for _, b := range c1 {
				m, ok := mergeCuts(a, b, limit)
				if !ok {
					continue
				}
				for k := 0; k < len(out); k++ {
					if dominates(out[k], m) {
						continue merge
					}
				}
				// Remove cuts dominated by the new one.
				kept := out[:0]
				for _, ex := range out {
					if !dominates(m, ex) {
						kept = append(kept, ex)
					}
				}
				out = append(kept, m)
				if len(out) >= cutsPerNode {
					break merge
				}
			}
		}
		out = append(out, Cut{Leaves: []int{id}})
		cuts[id] = out
	}
	return cuts
}
