package synth

import "github.com/nyu-secml/almost/internal/aig"

// cutSize is the leaf limit for rewrite's cut enumeration (ABC uses
// 4-input cuts for rewriting).
const cutSize = 4

// cutsPerNode bounds the number of cuts kept per node (priority cuts).
const cutsPerNode = 8

// Cut is a set of leaf node IDs (sorted) that separates a root from the
// rest of the graph.
type Cut struct {
	Leaves []int
}

// mergeCuts unions two cuts, returning ok=false when the result exceeds
// the leaf limit.
func mergeCuts(a, b Cut, limit int) (Cut, bool) {
	out, ok := mergeCutsInto(make([]int, 0, len(a.Leaves)+len(b.Leaves)), a, b, limit)
	if !ok {
		return Cut{}, false
	}
	return Cut{Leaves: out}, true
}

// mergeCutsInto unions two cuts into dst (which the caller provides with
// enough capacity for len(a)+len(b) leaves to stay allocation-free),
// returning ok=false when the result exceeds the leaf limit.
func mergeCutsInto(dst []int, a, b Cut, limit int) ([]int, bool) {
	out := dst[:0]
	i, j := 0, 0
	for i < len(a.Leaves) && j < len(b.Leaves) {
		switch {
		case a.Leaves[i] == b.Leaves[j]:
			out = append(out, a.Leaves[i])
			i++
			j++
		case a.Leaves[i] < b.Leaves[j]:
			out = append(out, a.Leaves[i])
			i++
		default:
			out = append(out, b.Leaves[j])
			j++
		}
		if len(out) > limit {
			return out, false
		}
	}
	out = append(out, a.Leaves[i:]...)
	out = append(out, b.Leaves[j:]...)
	if len(out) > limit {
		return out, false
	}
	return out, true
}

func equalCuts(a, b Cut) bool {
	if len(a.Leaves) != len(b.Leaves) {
		return false
	}
	for i := range a.Leaves {
		if a.Leaves[i] != b.Leaves[i] {
			return false
		}
	}
	return true
}

// dominates reports whether cut a's leaves are a subset of cut b's.
func dominates(a, b Cut) bool {
	if len(a.Leaves) > len(b.Leaves) {
		return false
	}
	i := 0
	for _, l := range b.Leaves {
		if i < len(a.Leaves) && a.Leaves[i] == l {
			i++
		}
	}
	return i == len(a.Leaves)
}

// EnumerateCuts computes up to cutsPerNode k-feasible cuts for every live
// AND node, bottom-up. The trivial cut {node} is always included for
// inputs and serves as the unit cut during merging; for AND nodes it is
// appended last so rewriting prefers non-trivial cuts. It is a thin
// wrapper over the arena enumeration; the transforms call that directly
// so the cut storage is pooled across passes.
func EnumerateCuts(g *aig.AIG, limit int) map[int][]Cut {
	a := NewArena()
	cuts := map[int][]Cut{}
	for id, cs := range a.enumerateCuts(g, limit) {
		if cs != nil {
			cuts[id] = cs
		}
	}
	return cuts
}
