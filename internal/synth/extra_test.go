package synth

import (
	"math/rand"
	"testing"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/circuits"
	"github.com/nyu-secml/almost/internal/cnf"
)

func TestSynthTTSingleVariable(t *testing.T) {
	g := aig.New()
	a := g.AddInput("a")
	if SynthTT(g, 0x2, []aig.Lit{a}) != a { // tt(1) for f=a is bit pattern 10
		t.Fatal("1-var projection failed")
	}
	if SynthTT(g, 0x1, []aig.Lit{a}) != a.Not() {
		t.Fatal("1-var negation failed")
	}
	if SynthTT(g, 0x3, []aig.Lit{a}) != aig.True {
		t.Fatal("1-var tautology failed")
	}
}

func TestEstimateTTCostMonotoneExamples(t *testing.T) {
	// AND of two vars costs 1 node; XOR costs 3; a constant costs 0.
	if c := EstimateTTCost(0x8, 2); c != 1 {
		t.Errorf("AND cost = %d, want 1", c)
	}
	if c := EstimateTTCost(0x6, 2); c != 3 {
		t.Errorf("XOR cost = %d, want 3", c)
	}
	if c := EstimateTTCost(0x0, 2); c != 0 {
		t.Errorf("const cost = %d, want 0", c)
	}
}

func TestBalanceRespectsSharedNodes(t *testing.T) {
	// A node with fanout 2 must not be duplicated into both trees.
	g := aig.New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	c := g.AddInput("c")
	d := g.AddInput("d")
	shared := g.And(a, b)
	o1 := g.And(g.And(shared, c), d)
	o2 := g.And(shared, d.Not())
	g.AddOutput(o1, "o1")
	g.AddOutput(o2, "o2")
	h := Balance(g, nil)
	if ok, _, _ := cnf.Equivalent(g, h); !ok {
		t.Fatal("balance broke shared logic")
	}
	if h.NumAnds() > g.NumAnds() {
		t.Fatalf("balance duplicated shared logic: %d -> %d", g.NumAnds(), h.NumAnds())
	}
}

func TestEmptyRecipeIsIdentityFunction(t *testing.T) {
	g := circuits.MustGenerate("c432")
	h := Recipe{}.Apply(g)
	if h != g {
		// Apply returns the input unchanged for empty recipes.
		t.Fatal("empty recipe should be identity")
	}
}

func TestRepeatedTransformIdempotentInSize(t *testing.T) {
	// Applying the same size-reducing transform twice should not grow.
	g := circuits.MustGenerate("c499")
	h1 := Rewrite(g, false, nil)
	h2 := Rewrite(h1, false, nil)
	if h2.NumAnds() > h1.NumAnds() {
		t.Fatalf("second rewrite grew: %d -> %d", h1.NumAnds(), h2.NumAnds())
	}
	if ok, _, _ := cnf.Equivalent(g, h2); !ok {
		t.Fatal("double rewrite broke function")
	}
}

func TestRecipeOnLockedCircuitKeepsKeyCount(t *testing.T) {
	// Transforms must never remove key inputs (inputs are part of the
	// interface even when a transform makes one dead).
	g := circuits.MustGenerate("c432")
	locked := aig.New()
	// Build a locked-shaped AIG via the rebuild path.
	_ = locked
	rng := rand.New(rand.NewSource(1))
	r := RandomRecipe(rng, 5)
	// Locking itself lives in internal/lock (import cycle in tests is
	// fine, but keep this package-local: emulate with AddKeyInput).
	h := aig.New()
	var ins []aig.Lit
	for i := 0; i < g.NumInputs(); i++ {
		ins = append(ins, h.AddInput(g.InputName(i)))
	}
	k := h.AddKeyInput("keyinput0")
	h.AddOutput(h.Xor(h.And(ins[0], ins[1]), k), "o")
	out := r.Apply(h)
	if out.NumKeyInputs() != 1 {
		t.Fatalf("recipe %q lost key inputs", r)
	}
}

func TestReconvWindowLeavesBound(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := randomAIG(rng, 8, 3, 80)
	a := NewArena()
	for _, id := range g.TopoOrder() {
		leaves := a.reconvWindow(g, id, refactorLeafLimit)
		if len(leaves) > refactorLeafLimit {
			t.Fatalf("window exceeded limit: %d leaves", len(leaves))
		}
		if len(leaves) == 0 {
			t.Fatalf("empty window for node %d", id)
		}
	}
}

func TestCutEnumerationRespectsLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	g := randomAIG(rng, 10, 3, 100)
	cuts := EnumerateCuts(g, 4)
	for id, cs := range cuts {
		if len(cs) > cutsPerNode+1 { // +1 for the trivial cut
			t.Fatalf("node %d has %d cuts", id, len(cs))
		}
		for _, c := range cs {
			if len(c.Leaves) > 4 {
				t.Fatalf("node %d cut %v exceeds leaf limit", id, c.Leaves)
			}
		}
	}
}

func TestSigHelpers(t *testing.T) {
	a := []uint64{0xF0F0, 0x1234}
	b := []uint64{0xF0F0, 0x1234}
	if !sigEqual(a, b, false) {
		t.Fatal("equal signatures rejected")
	}
	c := []uint64{^uint64(0xF0F0), ^uint64(0x1234)}
	if !sigEqual(a, c, true) {
		t.Fatal("complement signatures rejected")
	}
	if sigEqual(a, c, false) {
		t.Fatal("complement accepted as equal")
	}
	if sigKey(a) == sigKey(c) {
		t.Fatal("hash collision between sig and complement (suspicious)")
	}
}
