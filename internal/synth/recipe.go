package synth

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/nyu-secml/almost/internal/aig"
)

// Step is one synthesis transformation in a recipe.
type Step uint8

// The seven transformations the paper's recipes are drawn from (§IV-A),
// in a fixed order so Step values are stable across runs.
const (
	StepRewrite Step = iota
	StepResub
	StepRefactor
	StepRewriteZ
	StepResubZ
	StepRefactorZ
	StepBalance
	numSteps
)

// AllSteps lists every available transformation.
func AllSteps() []Step {
	out := make([]Step, numSteps)
	for i := range out {
		out[i] = Step(i)
	}
	return out
}

// String returns the ABC-style name of the step.
func (s Step) String() string {
	switch s {
	case StepRewrite:
		return "rewrite"
	case StepResub:
		return "resub"
	case StepRefactor:
		return "refactor"
	case StepRewriteZ:
		return "rewrite -z"
	case StepResubZ:
		return "resub -z"
	case StepRefactorZ:
		return "refactor -z"
	case StepBalance:
		return "balance"
	}
	return fmt.Sprintf("step(%d)", uint8(s))
}

// MarshalText encodes the step as its ABC-style name, giving recipes a
// stable wire representation (JSON renders a Recipe as a name array,
// e.g. ["balance","rewrite -z"]) that survives any renumbering of the
// Step constants.
func (s Step) MarshalText() ([]byte, error) {
	if s >= numSteps {
		return nil, fmt.Errorf("synth: invalid step %d", uint8(s))
	}
	return []byte(s.String()), nil
}

// UnmarshalText decodes an ABC-style step name (long or short form).
func (s *Step) UnmarshalText(text []byte) error {
	step, err := ParseStep(string(text))
	if err != nil {
		return err
	}
	*s = step
	return nil
}

// ParseStep converts an ABC-style name into a Step.
func ParseStep(name string) (Step, error) {
	switch strings.TrimSpace(name) {
	case "rewrite", "rw":
		return StepRewrite, nil
	case "resub", "rs":
		return StepResub, nil
	case "refactor", "rf":
		return StepRefactor, nil
	case "rewrite -z", "rwz":
		return StepRewriteZ, nil
	case "resub -z", "rsz":
		return StepResubZ, nil
	case "refactor -z", "rfz":
		return StepRefactorZ, nil
	case "balance", "b":
		return StepBalance, nil
	}
	return 0, fmt.Errorf("synth: unknown transformation %q", name)
}

// Apply runs the single transformation on g, returning a new AIG. It is
// a thin wrapper over Run with a private arena.
func (s Step) Apply(g *aig.AIG) *aig.AIG { return s.Run(g, nil) }

// Run runs the single transformation on g with the given arena (nil for
// a private one), returning a new AIG. The result is bit-for-bit
// identical for any arena, including nil.
func (s Step) Run(g *aig.AIG, a *Arena) *aig.AIG {
	switch s {
	case StepRewrite:
		return Rewrite(g, false, a)
	case StepRewriteZ:
		return Rewrite(g, true, a)
	case StepResub:
		return Resub(g, false, a)
	case StepResubZ:
		return Resub(g, true, a)
	case StepRefactor:
		return Refactor(g, false, a)
	case StepRefactorZ:
		return Refactor(g, true, a)
	case StepBalance:
		return Balance(g, a)
	}
	panic(fmt.Sprintf("synth: invalid step %d", uint8(s)))
}

// Recipe is an ordered sequence of transformations — the object ALMOST's
// simulated annealing searches over.
type Recipe []Step

// RecipeLength is the fixed recipe length used throughout the paper
// (L = 10).
const RecipeLength = 10

// Apply runs the recipe left to right, returning the final AIG. It is a
// thin wrapper over Run with a private arena (which already pools
// storage across the recipe's steps).
func (r Recipe) Apply(g *aig.AIG) *aig.AIG { return r.Run(g, nil) }

// Run runs the recipe left to right with the given arena (nil for a
// private one), returning the final AIG. Intermediate netlists are
// recycled into the arena as soon as the next step no longer needs them,
// so a warmed arena evaluates a recipe with near-zero steady-state graph
// allocations; the input g is never recycled, and the returned AIG is
// caller-owned (hand it to Arena.Recycle when done to close the loop —
// but note an empty recipe returns g itself, so guard with `out != g`
// before recycling when g must outlive the call). The result is
// bit-for-bit identical for any arena, including nil.
func (r Recipe) Run(g *aig.AIG, a *Arena) *aig.AIG {
	a = ensure(a)
	out := g
	for _, s := range r {
		next := s.Run(out, a)
		if out != g {
			a.Recycle(out)
		}
		out = next
	}
	return out
}

// String renders the recipe as a semicolon-separated script.
func (r Recipe) String() string {
	names := make([]string, len(r))
	for i, s := range r {
		names[i] = s.String()
	}
	return strings.Join(names, "; ")
}

// ParseRecipe parses a semicolon-separated script.
func ParseRecipe(script string) (Recipe, error) {
	var r Recipe
	for _, part := range strings.Split(script, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		s, err := ParseStep(part)
		if err != nil {
			return nil, err
		}
		r = append(r, s)
	}
	return r, nil
}

// Clone returns a copy of the recipe.
func (r Recipe) Clone() Recipe { return append(Recipe(nil), r...) }

// Equal reports element-wise equality.
func (r Recipe) Equal(o Recipe) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if r[i] != o[i] {
			return false
		}
	}
	return true
}

// Resyn2 returns the ABC resyn2 script — the paper's baseline recipe —
// expressed over the available transforms:
// b; rw; rf; b; rw; rwz; b; rfz; rwz; b (length 10).
func Resyn2() Recipe {
	return Recipe{
		StepBalance, StepRewrite, StepRefactor, StepBalance, StepRewrite,
		StepRewriteZ, StepBalance, StepRefactorZ, StepRewriteZ, StepBalance,
	}
}

// RandomRecipe draws a uniform random recipe of length n.
func RandomRecipe(rng *rand.Rand, n int) Recipe {
	r := make(Recipe, n)
	for i := range r {
		r[i] = Step(rng.Intn(int(numSteps)))
	}
	return r
}

// MutateRecipe returns a copy with one position re-drawn — the
// neighborhood move used by the simulated-annealing searches.
func MutateRecipe(rng *rand.Rand, r Recipe) Recipe {
	out := r.Clone()
	if len(out) == 0 {
		return out
	}
	i := rng.Intn(len(out))
	for {
		s := Step(rng.Intn(int(numSteps)))
		if s != out[i] || int(numSteps) == 1 {
			out[i] = s
			break
		}
	}
	return out
}
