package synth

import (
	"encoding/json"
	"testing"
)

// TestStepTextRoundTrip checks that every step marshals to its ABC-style
// name and parses back — the encoding recipes use on the wire.
func TestStepTextRoundTrip(t *testing.T) {
	for _, s := range AllSteps() {
		text, err := s.MarshalText()
		if err != nil {
			t.Fatalf("MarshalText(%v): %v", s, err)
		}
		var back Step
		if err := back.UnmarshalText(text); err != nil {
			t.Fatalf("UnmarshalText(%q): %v", text, err)
		}
		if back != s {
			t.Fatalf("step %v round-tripped to %v via %q", s, back, text)
		}
	}
	if _, err := Step(200).MarshalText(); err == nil {
		t.Fatal("MarshalText on an out-of-range step should fail")
	}
	var s Step
	if err := s.UnmarshalText([]byte("frobnicate")); err == nil {
		t.Fatal("UnmarshalText on an unknown name should fail")
	}
}

// TestRecipeJSONGolden pins the JSON shape of a recipe: an array of
// step names, stable across renumbering of the Step constants.
func TestRecipeJSONGolden(t *testing.T) {
	r := Recipe{StepBalance, StepRewriteZ, StepResub}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	want := `["balance","rewrite -z","resub"]`
	if string(data) != want {
		t.Fatalf("recipe JSON drifted:\n got  %s\n want %s", data, want)
	}
	var back Recipe
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(r) {
		t.Fatalf("recipe round-tripped to %v", back)
	}
}
