package synth

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/circuits"
	"github.com/nyu-secml/almost/internal/cnf"
)

func randomAIG(rng *rand.Rand, nIn, nOut, nAnd int) *aig.AIG {
	g := aig.New()
	lits := make([]aig.Lit, 0, nIn+nAnd)
	for i := 0; i < nIn; i++ {
		lits = append(lits, g.AddInput("i"))
	}
	for len(lits) < nIn+nAnd {
		a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
		b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
		l := g.And(a, b)
		if g.IsAnd(l.Node()) {
			lits = append(lits, l)
		}
	}
	for i := 0; i < nOut; i++ {
		g.AddOutput(lits[len(lits)-1-i].NotIf(rng.Intn(2) == 1), "o")
	}
	return g
}

// --- truth table machinery ---

func TestCofactors(t *testing.T) {
	// f = x0 AND x1 over 2 vars: tt = 1000b = 0x8.
	tt := uint64(0x8)
	if c := cofactor0(tt, 0) & aig.TTMask(2); c != 0 {
		t.Errorf("cofactor0 x0 = %x, want 0", c)
	}
	if c := cofactor1(tt, 0) & aig.TTMask(2); c != 0xC {
		t.Errorf("cofactor1 x0 = %x, want C (=x1)", c)
	}
}

func TestSupport(t *testing.T) {
	// f = x1 over 3 vars.
	tt := varMask(1) & aig.TTMask(3)
	sup := support(tt, 3)
	if len(sup) != 1 || sup[0] != 1 {
		t.Fatalf("support = %v, want [1]", sup)
	}
}

func TestISOPCoversExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for n := 1; n <= 6; n++ {
		for trial := 0; trial < 50; trial++ {
			tt := rng.Uint64() & aig.TTMask(n)
			cs := isop(tt, tt, n)
			if got := coverTT(cs, n); got != tt {
				t.Fatalf("n=%d tt=%x: cover=%x", n, tt, got)
			}
		}
	}
}

func TestSynthTTAllTwoVarFunctions(t *testing.T) {
	for tt := uint64(0); tt < 16; tt++ {
		g := aig.New()
		a := g.AddInput("a")
		b := g.AddInput("b")
		root := SynthTT(g, tt, []aig.Lit{a, b})
		g.AddOutput(root, "o")
		for m := 0; m < 4; m++ {
			in := []bool{m&1 == 1, m&2 == 2}
			want := tt&(1<<uint(m)) != 0
			if got := g.EvalSingle(in)[0]; got != want {
				t.Fatalf("tt=%x m=%d: got %v want %v", tt, m, got, want)
			}
		}
	}
}

func TestSynthTTRandomFunctions(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for n := 3; n <= 6; n++ {
		for trial := 0; trial < 30; trial++ {
			tt := rng.Uint64() & aig.TTMask(n)
			g := aig.New()
			leaves := make([]aig.Lit, n)
			for i := range leaves {
				leaves[i] = g.AddInput("x")
			}
			g.AddOutput(SynthTT(g, tt, leaves), "o")
			for m := 0; m < 1<<uint(n); m++ {
				in := make([]bool, n)
				for i := range in {
					in[i] = m&(1<<uint(i)) != 0
				}
				want := tt&(1<<uint(m)) != 0
				if got := g.EvalSingle(in)[0]; got != want {
					t.Fatalf("n=%d tt=%x m=%d wrong", n, tt, m)
				}
			}
		}
	}
}

func TestSynthTTSpecialCases(t *testing.T) {
	g := aig.New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	if SynthTT(g, 0, []aig.Lit{a, b}) != aig.False {
		t.Error("const0 not recognized")
	}
	if SynthTT(g, 0xF, []aig.Lit{a, b}) != aig.True {
		t.Error("const1 not recognized")
	}
	if SynthTT(g, 0xA, []aig.Lit{a, b}) != a {
		t.Error("projection x0 not recognized")
	}
	if SynthTT(g, 0x5, []aig.Lit{a, b}) != a.Not() {
		t.Error("negated projection not recognized")
	}
	if g.NumAnds() != 0 {
		t.Errorf("special cases built %d nodes", g.NumAnds())
	}
}

// --- cuts ---

func TestEnumerateCutsBasic(t *testing.T) {
	g := aig.New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	c := g.AddInput("c")
	n1 := g.And(a, b)
	n2 := g.And(n1, c)
	g.AddOutput(n2, "o")
	cuts := EnumerateCuts(g, 4)
	// n2 must have a cut {a,b,c}.
	found := false
	for _, cut := range cuts[n2.Node()] {
		if len(cut.Leaves) == 3 {
			found = true
			tt, ok := g.WindowTT(n2.Node(), cut.Leaves)
			if !ok {
				t.Fatalf("cut window not closed")
			}
			// a&b&c over leaves sorted ascending = all three true.
			if ttPopcount(tt, 3) != 1 {
				t.Fatalf("cut tt = %x", tt)
			}
		}
	}
	if !found {
		t.Fatalf("missing 3-leaf cut: %v", cuts[n2.Node()])
	}
}

func TestCutsAreValidWindows(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := randomAIG(rng, 8, 3, 60)
	cuts := EnumerateCuts(g, 4)
	for _, id := range g.TopoOrder() {
		for _, cut := range cuts[id] {
			if len(cut.Leaves) == 1 && cut.Leaves[0] == id {
				continue // trivial
			}
			if _, ok := g.WindowTT(id, cut.Leaves); !ok {
				t.Fatalf("node %d: cut %v is not a closed window", id, cut.Leaves)
			}
		}
	}
}

func TestMergeCutsAndDominance(t *testing.T) {
	a := Cut{Leaves: []int{1, 3}}
	b := Cut{Leaves: []int{3, 5}}
	m, ok := mergeCuts(a, b, 4)
	if !ok || len(m.Leaves) != 3 {
		t.Fatalf("merge = %v, %v", m, ok)
	}
	if _, ok := mergeCuts(Cut{Leaves: []int{1, 2, 3}}, Cut{Leaves: []int{4, 5, 6}}, 4); ok {
		t.Fatal("oversize merge accepted")
	}
	if !dominates(a, m) {
		t.Fatal("subset does not dominate")
	}
	if dominates(m, a) {
		t.Fatal("superset dominates")
	}
}

// --- transforms preserve function ---

func checkTransform(t *testing.T, name string, f func(*aig.AIG) *aig.AIG, g *aig.AIG) *aig.AIG {
	t.Helper()
	h := f(g)
	if ok, cex, _ := cnf.Equivalent(g, h); !ok {
		t.Fatalf("%s changed function (cex=%v)", name, cex)
	}
	return h
}

func TestBalancePreservesFunctionAndReducesDepth(t *testing.T) {
	// A long AND chain must balance to logarithmic depth.
	g := aig.New()
	var ins []aig.Lit
	for i := 0; i < 16; i++ {
		ins = append(ins, g.AddInput("x"))
	}
	cur := ins[0]
	for _, l := range ins[1:] {
		cur = g.And(cur, l)
	}
	g.AddOutput(cur, "o")
	if g.NumLevels() != 15 {
		t.Fatalf("setup depth = %d", g.NumLevels())
	}
	h := checkTransform(t, "balance", func(g *aig.AIG) *aig.AIG { return Balance(g, nil) }, g)
	if h.NumLevels() != 4 {
		t.Fatalf("balanced depth = %d, want 4", h.NumLevels())
	}
}

func TestTransformsPreserveFunctionOnBenchmarks(t *testing.T) {
	g := circuits.MustGenerate("c432")
	steps := []struct {
		name string
		f    func(*aig.AIG) *aig.AIG
	}{
		{"balance", func(g *aig.AIG) *aig.AIG { return Balance(g, nil) }},
		{"rewrite", func(g *aig.AIG) *aig.AIG { return Rewrite(g, false, nil) }},
		{"rewrite -z", func(g *aig.AIG) *aig.AIG { return Rewrite(g, true, nil) }},
		{"refactor", func(g *aig.AIG) *aig.AIG { return Refactor(g, false, nil) }},
		{"refactor -z", func(g *aig.AIG) *aig.AIG { return Refactor(g, true, nil) }},
		{"resub", func(g *aig.AIG) *aig.AIG { return Resub(g, false, nil) }},
		{"resub -z", func(g *aig.AIG) *aig.AIG { return Resub(g, true, nil) }},
	}
	for _, s := range steps {
		s := s
		t.Run(s.name, func(t *testing.T) {
			checkTransform(t, s.name, s.f, g)
		})
	}
}

func TestTransformsPreserveFunctionQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick property test in -short mode")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomAIG(rng, 5+rng.Intn(4), 1+rng.Intn(3), 15+rng.Intn(50))
		for _, s := range AllSteps() {
			h := s.Apply(g)
			if ok, _, _ := cnf.Equivalent(g, h); !ok {
				t.Logf("seed %d: %v changed function", seed, s)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestRewriteReducesRedundantLogic(t *testing.T) {
	// Build a redundant structure: (a&b) | (a&b&c) == a&b (absorption),
	// expressed without sharing so rewrite has something to find.
	g := aig.New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	c := g.AddInput("c")
	ab := g.And(a, b)
	abc := g.And(g.And(a, c), b)
	g.AddOutput(g.Or(ab, abc), "o")
	before := g.NumAnds()
	h := Rewrite(g, false, nil)
	if ok, _, _ := cnf.Equivalent(g, h); !ok {
		t.Fatal("rewrite changed function")
	}
	if h.NumAnds() >= before {
		t.Fatalf("rewrite did not shrink: %d -> %d", before, h.NumAnds())
	}
}

func TestResubMergesEquivalentNodes(t *testing.T) {
	// Two structurally different XOR implementations; resub should merge.
	g := aig.New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	x1 := g.Xor(a, b)                          // (a&!b) | (!a&b)
	x2 := g.And(g.Or(a, b), g.And(a, b).Not()) // (a|b) & !(a&b)
	if x1 == x2 {
		t.Fatal("setup: forms unexpectedly hashed together")
	}
	g.AddOutput(g.And(x1, x2), "both") // = x1 since x1==x2 functionally
	before := g.NumAnds()
	h := Resub(g, false, nil)
	if ok, _, _ := cnf.Equivalent(g, h); !ok {
		t.Fatal("resub changed function")
	}
	if h.NumAnds() >= before {
		t.Fatalf("resub did not shrink: %d -> %d", before, h.NumAnds())
	}
}

func TestTransformsDeterministic(t *testing.T) {
	g := circuits.MustGenerate("c499")
	for _, s := range AllSteps() {
		h1 := s.Apply(g)
		h2 := s.Apply(g)
		if h1.NumAnds() != h2.NumAnds() || h1.NumLevels() != h2.NumLevels() {
			t.Fatalf("%v nondeterministic: %v vs %v", s, h1, h2)
		}
	}
}

// --- recipes ---

func TestStepStringParseRoundTrip(t *testing.T) {
	for _, s := range AllSteps() {
		got, err := ParseStep(s.String())
		if err != nil || got != s {
			t.Fatalf("round trip %v: %v, %v", s, got, err)
		}
	}
	if _, err := ParseStep("bogus"); err == nil {
		t.Fatal("bogus step accepted")
	}
}

func TestRecipeStringParse(t *testing.T) {
	r := Resyn2()
	if len(r) != RecipeLength {
		t.Fatalf("resyn2 length = %d, want %d", len(r), RecipeLength)
	}
	parsed, err := ParseRecipe(r.String())
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.Equal(r) {
		t.Fatalf("parse(%q) = %v", r.String(), parsed)
	}
	short, err := ParseRecipe("b; rw; rfz")
	if err != nil {
		t.Fatal(err)
	}
	want := Recipe{StepBalance, StepRewrite, StepRefactorZ}
	if !short.Equal(want) {
		t.Fatalf("abbreviations: %v", short)
	}
}

func TestRandomRecipeAndMutate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	r := RandomRecipe(rng, RecipeLength)
	if len(r) != RecipeLength {
		t.Fatalf("length %d", len(r))
	}
	m := MutateRecipe(rng, r)
	if m.Equal(r) {
		t.Fatal("mutation is identity")
	}
	diff := 0
	for i := range r {
		if r[i] != m[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("mutation changed %d positions", diff)
	}
	// Original untouched.
	r2 := RandomRecipe(rand.New(rand.NewSource(5)), RecipeLength)
	if !r.Equal(r2) {
		t.Fatal("RandomRecipe not deterministic for fixed seed")
	}
}

func TestResyn2OnBenchmarkShrinks(t *testing.T) {
	g := circuits.MustGenerate("c1908")
	h := Resyn2().Apply(g)
	if ok, _, _ := cnf.Equivalent(g, h); !ok {
		t.Fatal("resyn2 changed function")
	}
	if h.NumAnds() > g.NumAnds() {
		t.Fatalf("resyn2 grew the netlist: %d -> %d", g.NumAnds(), h.NumAnds())
	}
	t.Logf("c1908: %d -> %d ANDs, %d -> %d levels",
		g.NumAnds(), h.NumAnds(), g.NumLevels(), h.NumLevels())
}

func TestDifferentRecipesDifferentStructure(t *testing.T) {
	// The core premise of the paper: different recipes yield structurally
	// different netlists for the same function.
	g := circuits.MustGenerate("c880")
	rng := rand.New(rand.NewSource(3))
	r1 := RandomRecipe(rng, 6)
	r2 := RandomRecipe(rng, 6)
	h1 := r1.Apply(g)
	h2 := r2.Apply(g)
	if ok, _, _ := cnf.Equivalent(h1, h2); !ok {
		t.Fatal("recipes changed function")
	}
	if h1.NumAnds() == h2.NumAnds() && h1.NumLevels() == h2.NumLevels() {
		t.Logf("warning: recipes %q and %q yielded same size/depth (may be coincidence)", r1, r2)
	}
}

func BenchmarkRewriteC880(b *testing.B) {
	g := circuits.MustGenerate("c880")
	a := NewArena()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Recycle(Rewrite(g, false, a))
	}
}

func BenchmarkBalanceC1908(b *testing.B) {
	g := circuits.MustGenerate("c1908")
	a := NewArena()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Recycle(Balance(g, a))
	}
}

// BenchmarkResyn2C432 measures the paper's baseline recipe end to end on
// a warmed arena with the result recycled each iteration — the
// steady-state cost one engine worker pays per candidate recipe. This is
// the "synth recipe" row of BENCH_pr5.json; run with -benchmem.
func BenchmarkResyn2C432(b *testing.B) {
	g := circuits.MustGenerate("c432")
	a := NewArena()
	r := Resyn2()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Recycle(r.Run(g, a))
	}
}

// BenchmarkResyn2C432NoArena is the allocating-wrapper variant of
// BenchmarkResyn2C432 (a private arena per Apply, result garbage
// collected) — the migration-cost comparison point.
func BenchmarkResyn2C432NoArena(b *testing.B) {
	g := circuits.MustGenerate("c432")
	r := Resyn2()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Apply(g)
	}
}
