package synth

import (
	"math/rand"
	"sort"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/cnf"
)

// resubSigWords is the signature width (64-bit words) used by
// resubstitution candidate filtering.
const resubSigWords = 8

// resubSATBudget bounds the SAT effort per resubstitution proof.
const resubSATBudget = 300

// resubSeed fixes the simulation seed so resub is deterministic.
const resubSeed = 0x5EED

// Balance rebuilds AND trees to minimize depth: maximal fanout-free
// AND-trees are collapsed into their conjuncts and re-associated
// greedily, always pairing the two shallowest operands (Huffman style).
// Function is preserved; levels typically drop. a supplies reusable
// scratch storage and may be nil.
func Balance(g *aig.AIG, a *Arena) *aig.AIG {
	a = ensure(a)
	fc := a.fanoutCounts(g)
	order := a.topo(g)
	rb := a.begin(g)
	// absorbed marks AND nodes that are collapsed into a parent tree.
	absorbed := a.boolNodes(g.NumNodes())
	for _, id := range order {
		f0, f1 := g.Fanins(id)
		for _, f := range [2]aig.Lit{f0, f1} {
			if !f.Neg() && g.IsAnd(f.Node()) && fc[f.Node()] == 1 {
				absorbed[f.Node()] = true
			}
		}
	}
	var conjuncts func(l aig.Lit, out []aig.Lit) []aig.Lit
	conjuncts = func(l aig.Lit, out []aig.Lit) []aig.Lit {
		if !l.Neg() && g.IsAnd(l.Node()) && absorbed[l.Node()] {
			c0, c1 := g.Fanins(l.Node())
			out = conjuncts(c0, out)
			return conjuncts(c1, out)
		}
		return append(out, l)
	}
	for _, id := range order {
		if absorbed[id] {
			continue
		}
		f0, f1 := g.Fanins(id)
		lits := conjuncts(f0, a.conj[:0])
		lits = conjuncts(f1, lits)
		a.conj = lits
		// Translate and balance by destination level.
		if cap(a.dstLits) < len(lits) {
			a.dstLits = make([]aig.Lit, len(lits))
		}
		dst := a.dstLits[:len(lits)]
		for i, l := range lits {
			dst[i] = rb.LitOf(l)
		}
		rb.Map(id, balancedAnd(rb.Dst, dst))
	}
	return a.finishCleanup()
}

// balancedAnd combines literals pairing the two shallowest first. It
// sorts and shrinks work in place; the caller must not reuse its
// contents. The stable insertion sort yields the exact permutation
// sort.SliceStable produced historically (stable sorts are unique).
func balancedAnd(g *aig.AIG, work []aig.Lit) aig.Lit {
	if len(work) == 0 {
		return aig.True
	}
	for len(work) > 1 {
		for i := 1; i < len(work); i++ {
			for j := i; j > 0 && g.Level(work[j].Node()) < g.Level(work[j-1].Node()); j-- {
				work[j], work[j-1] = work[j-1], work[j]
			}
		}
		n := g.And(work[0], work[1])
		copy(work[1:], work[2:])
		work[0] = n
		work = work[:len(work)-1]
	}
	return work[0]
}

// Rewrite performs cut-based rewriting: for every node, 4-input cuts are
// enumerated, the cut function is resynthesized from its ISOP, and the
// best replacement is accepted when it saves nodes (or, with zero=true,
// also when cost-neutral, which diversifies structure without growth —
// ABC's "rewrite -z"). a supplies reusable scratch storage and may be
// nil.
func Rewrite(g *aig.AIG, zero bool, a *Arena) *aig.AIG {
	a = ensure(a)
	fc := a.fanoutCounts(g)
	cuts := a.enumerateCuts(g, cutSize)
	rb := a.begin(g)
	for _, id := range a.topo(g) {
		var (
			found      bool
			bestTT     uint64
			bestLeaves []int
			bestGain   int
		)
		for _, cut := range cuts[id] {
			if len(cut.Leaves) < 2 || (len(cut.Leaves) == 1 && cut.Leaves[0] == id) {
				continue
			}
			tt, ok := a.windowTT(g, id, cut.Leaves)
			if !ok {
				continue
			}
			cost := a.ttPlanFor(tt, len(cut.Leaves)).cost
			gain := a.savedNodes(g, id, cut.Leaves, fc) - cost
			if !found || gain > bestGain {
				found, bestTT, bestLeaves, bestGain = true, tt, cut.Leaves, gain
			}
		}
		accept := found && (bestGain > 0 || (zero && bestGain == 0))
		if accept {
			if cap(a.dstLits) < len(bestLeaves) {
				a.dstLits = make([]aig.Lit, len(bestLeaves))
			}
			leafLits := a.dstLits[:len(bestLeaves)]
			for i, l := range bestLeaves {
				leafLits[i] = rb.LitOf(aig.MakeLit(l, false))
			}
			rb.Map(id, a.synthTT(rb.Dst, bestTT, leafLits))
			continue
		}
		f0, f1 := g.Fanins(id)
		rb.Map(id, rb.Dst.And(rb.LitOf(f0), rb.LitOf(f1)))
	}
	return a.finishCleanup()
}

// refactorLeafLimit is the window size for refactoring (larger than
// rewrite's cuts, within the 6-variable truth-table limit).
const refactorLeafLimit = 6

// reconvWindow grows a reconvergence-driven window rooted at id with at
// most limit leaves, expanding the deepest expandable leaf first. The
// returned slice aliases the arena and is valid until the next call.
func (a *Arena) reconvWindow(g *aig.AIG, id, limit int) []int {
	f0, f1 := g.Fanins(id)
	leaves := append(a.winLeaves[:0], f0.Node(), f1.Node())
	if leaves[0] == leaves[1] {
		leaves = leaves[:1]
	}
	for {
		bestIdx, bestScore := -1, -1
		for i, l := range leaves {
			if !g.IsAnd(l) {
				continue
			}
			c0, c1 := g.Fanins(l)
			added := 0
			if !containsInt(leaves, c0.Node()) {
				added++
			}
			if c1.Node() != c0.Node() && !containsInt(leaves, c1.Node()) {
				added++
			}
			if len(leaves)-1+added > limit {
				continue
			}
			// Prefer expansions that reconverge (add fewer leaves), then
			// deeper nodes.
			score := (2-added)*1000 + g.Level(l)
			if score > bestScore {
				bestScore, bestIdx = score, i
			}
		}
		if bestIdx < 0 {
			break
		}
		l := leaves[bestIdx]
		leaves = append(leaves[:bestIdx], leaves[bestIdx+1:]...)
		c0, c1 := g.Fanins(l)
		if !containsInt(leaves, c0.Node()) {
			leaves = append(leaves, c0.Node())
		}
		if !containsInt(leaves, c1.Node()) {
			leaves = append(leaves, c1.Node())
		}
	}
	sort.Ints(leaves)
	a.winLeaves = leaves
	return leaves
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Refactor collapses one large reconvergence-driven window per node into
// its ISOP-resynthesized form when that saves nodes (or is cost-neutral
// with zero=true) — the analogue of ABC's refactor / refactor -z. a
// supplies reusable scratch storage and may be nil.
func Refactor(g *aig.AIG, zero bool, a *Arena) *aig.AIG {
	a = ensure(a)
	fc := a.fanoutCounts(g)
	rb := a.begin(g)
	for _, id := range a.topo(g) {
		leaves := a.reconvWindow(g, id, refactorLeafLimit)
		replaced := false
		if len(leaves) >= 2 && len(leaves) <= 6 {
			if tt, ok := a.windowTT(g, id, leaves); ok {
				cost := a.ttPlanFor(tt, len(leaves)).cost
				gain := a.savedNodes(g, id, leaves, fc) - cost
				if gain > 0 || (zero && gain == 0) {
					if cap(a.dstLits) < len(leaves) {
						a.dstLits = make([]aig.Lit, len(leaves))
					}
					leafLits := a.dstLits[:len(leaves)]
					for i, l := range leaves {
						leafLits[i] = rb.LitOf(aig.MakeLit(l, false))
					}
					rb.Map(id, a.synthTT(rb.Dst, tt, leafLits))
					replaced = true
				}
			}
		}
		if !replaced {
			f0, f1 := g.Fanins(id)
			rb.Map(id, rb.Dst.And(rb.LitOf(f0), rb.LitOf(f1)))
		}
	}
	return a.finishCleanup()
}

// sigKey folds a signature into a hashable key.
func sigKey(sig []uint64) uint64 {
	var h uint64 = 1469598103934665603
	for _, w := range sig {
		h ^= w
		h *= 1099511628211
	}
	return h
}

func sigEqual(a, b []uint64, neg bool) bool {
	for i := range a {
		w := b[i]
		if neg {
			w = ^w
		}
		if a[i] != w {
			return false
		}
	}
	return true
}

// Resub performs SAT-verified resubstitution. The base pass merges nodes
// that are functionally equivalent (up to complement) to an earlier node
// — 0-resubstitution, as in fraiging. With zero=true it additionally
// attempts 1-resubstitution: reimplementing a node as a single AND of two
// existing divisors from its neighborhood, accepted even when
// cost-neutral ("resub -z"). a supplies reusable scratch storage and may
// be nil.
func Resub(g *aig.AIG, zero bool, a *Arena) *aig.AIG {
	a = ensure(a)
	rng := rand.New(rand.NewSource(resubSeed))
	sigs := g.SignaturesInto(&a.sim, rng, resubSigWords)
	order := a.topo(g)

	// Candidate index: signature hash (and complement hash) -> node IDs in
	// topological order. Inputs participate as divisors.
	if a.byKey == nil {
		a.byKey = map[uint64][]int{}
	} else {
		clear(a.byKey)
	}
	byKey := a.byKey
	add := func(id int) {
		byKey[sigKey(sigs[id])] = append(byKey[sigKey(sigs[id])], id)
	}
	for i := 0; i < g.NumInputs(); i++ {
		add(g.Input(i).Node())
	}
	for _, id := range order {
		add(id)
	}
	negKey := func(sig []uint64) uint64 {
		if cap(a.negBuf) < len(sig) {
			a.negBuf = make([]uint64, len(sig))
		}
		tmp := a.negBuf[:len(sig)]
		for i, w := range sig {
			tmp[i] = ^w
		}
		return sigKey(tmp)
	}

	fanouts := g.Fanouts()
	rb := a.begin(g)
	merged := a.boolNodes(g.NumNodes())
	for _, id := range order {
		if lit, ok := zeroResub(g, id, sigs, byKey, negKey, merged); ok {
			rb.Map(id, rb.LitOf(lit))
			merged[id] = true
			continue
		}
		if zero {
			if lit, ok := oneResub(g, id, sigs, fanouts); ok {
				a0, a1 := lit[0], lit[1]
				nl := rb.Dst.And(rb.LitOf(a0), rb.LitOf(a1)).NotIf(lit[2].Neg())
				rb.Map(id, nl)
				continue
			}
		}
		f0, f1 := g.Fanins(id)
		rb.Map(id, rb.Dst.And(rb.LitOf(f0), rb.LitOf(f1)))
	}
	return a.finishCleanup()
}

// zeroResub finds an earlier node equivalent to id (possibly
// complemented) and returns the replacement literal in the source graph.
func zeroResub(g *aig.AIG, id int, sigs [][]uint64, byKey map[uint64][]int, negKey func([]uint64) uint64, merged []bool) (aig.Lit, bool) {
	try := func(cands []int, neg bool) (aig.Lit, bool) {
		for _, m := range cands {
			if m >= id || merged[m] {
				continue
			}
			if !sigEqual(sigs[id], sigs[m], neg) {
				continue
			}
			eq, proven := cnf.LitsEquivalent(g, aig.MakeLit(id, false), aig.MakeLit(m, neg), resubSATBudget)
			// proven gates eq: on budget exhaustion (Unknown) the pair is
			// skipped — never merged on an unproven claim, and never
			// treated as proved-different either (a later candidate may
			// still match).
			if proven && eq {
				return aig.MakeLit(m, neg), true
			}
		}
		return 0, false
	}
	if l, ok := try(byKey[sigKey(sigs[id])], false); ok {
		return l, true
	}
	if l, ok := try(byKey[negKey(sigs[id])], true); ok {
		return l, true
	}
	return 0, false
}

// oneResub searches divisor pairs (d0, d1) from the structural
// neighborhood of id such that id == (d0' AND d1')^p, verified by SAT.
// On success it returns [d0Lit, d1Lit, polarity] where polarity's
// complement bit applies to the AND.
func oneResub(g *aig.AIG, id int, sigs [][]uint64, fanouts [][]int) ([3]aig.Lit, bool) {
	// Divisors: 2-hop structural neighborhood, excluding id and its TFO
	// (larger IDs), capped for cost.
	nb := g.KHopNeighborhood(id, 2, fanouts)
	var div []int
	for _, d := range nb {
		if d < id && !g.IsConst(d) {
			div = append(div, d)
		}
	}
	if len(div) > 12 {
		div = div[:12]
	}
	target := sigs[id]
	for i := 0; i < len(div); i++ {
		for j := i + 1; j < len(div); j++ {
			for pol := 0; pol < 8; pol++ {
				n0, n1, np := pol&1 == 1, pol&2 == 2, pol&4 == 4
				if matchAnd(target, sigs[div[i]], sigs[div[j]], n0, n1, np) {
					l0 := aig.MakeLit(div[i], n0)
					l1 := aig.MakeLit(div[j], n1)
					if eq, proven := litEquivAnd(g, aig.MakeLit(id, false), l0, l1, np); proven && eq {
						return [3]aig.Lit{l0, l1, aig.MakeLit(0, np)}, true
					}
				}
			}
		}
	}
	return [3]aig.Lit{}, false
}

func matchAnd(target, s0, s1 []uint64, n0, n1, np bool) bool {
	for k := range target {
		a, b := s0[k], s1[k]
		if n0 {
			a = ^a
		}
		if n1 {
			b = ^b
		}
		v := a & b
		if np {
			v = ^v
		}
		if target[k] != v {
			return false
		}
	}
	return true
}

// litEquivAnd checks x == (a AND b) ^ np via SAT on the source graph.
func litEquivAnd(g *aig.AIG, x, a, b aig.Lit, np bool) (bool, bool) {
	// Reuse LitsEquivalent by expressing the AND inside a throwaway clone.
	h := g.Clone()
	t := h.And(a, b).NotIf(np)
	return cnf.LitsEquivalent(h, x, t, resubSATBudget)
}
