// Package synth implements the logic-synthesis engine ALMOST tunes: the
// seven AIG transformations the paper draws recipes from (rewrite, resub,
// refactor, their zero-cost -z variants, and balance), plus recipe
// handling and the resyn2 baseline script.
//
// The transforms follow the ABC playbook: cut/window enumeration, truth
// table computation, ISOP-based resynthesis, SAT-verified
// resubstitution, and level-minimizing tree balancing. They are
// deterministic: a given recipe applied to a given AIG always yields the
// same netlist — the property that makes synthesis-induced key-gate
// structure learnable, and that ALMOST exploits in reverse.
package synth

import (
	"math/bits"

	"github.com/nyu-secml/almost/internal/aig"
)

// cube is a product term over window variables: for variable i,
// mask bit i set means the variable appears; value bit i gives its
// polarity (1 = positive).
type cube struct {
	mask, value uint8
}

// cofactor0 returns tt with variable v set to 0, duplicated into both
// halves so the result is still a full table.
func cofactor0(tt uint64, v int) uint64 {
	m := varMask(v)
	lo := tt & ^m
	return lo | lo<<(1<<uint(v))
}

// cofactor1 returns tt with variable v set to 1.
func cofactor1(tt uint64, v int) uint64 {
	m := varMask(v)
	hi := tt & m
	return hi | hi>>(1<<uint(v))
}

func varMask(v int) uint64 {
	masks := [6]uint64{
		0xAAAAAAAAAAAAAAAA,
		0xCCCCCCCCCCCCCCCC,
		0xF0F0F0F0F0F0F0F0,
		0xFF00FF00FF00FF00,
		0xFFFF0000FFFF0000,
		0xFFFFFFFF00000000,
	}
	return masks[v]
}

// support returns the variables (< n) that tt actually depends on.
func support(tt uint64, n int) []int {
	var vars []int
	for v := 0; v < n; v++ {
		if cofactor0(tt, v) != cofactor1(tt, v) {
			vars = append(vars, v)
		}
	}
	return vars
}

// isop computes an irredundant sum-of-products cover with
// L ⊆ cover ⊆ U using the Minato-Morreale procedure. n is the variable
// count. The returned cover, interpreted as OR of cubes, equals L when
// U == L.
func isop(L, U uint64, n int) []cube {
	mask := aig.TTMask(n)
	L &= mask
	U &= mask
	if L == 0 {
		return nil
	}
	if U == mask {
		return []cube{{}} // tautology cube
	}
	// Pick the highest variable in the support of L or U's complement.
	v := -1
	for i := n - 1; i >= 0; i-- {
		if cofactor0(L, i) != cofactor1(L, i) || cofactor0(U, i) != cofactor1(U, i) {
			v = i
			break
		}
	}
	if v < 0 {
		// L is constant non-zero and U is constant non-one: impossible
		// given the guards above, but return the safe cover.
		return []cube{{}}
	}
	L0, L1 := cofactor0(L, v)&mask, cofactor1(L, v)&mask
	U0, U1 := cofactor0(U, v)&mask, cofactor1(U, v)&mask

	c0 := isop(L0&^U1, U0, n)
	c1 := isop(L1&^U0, U1, n)
	cov0 := coverTT(c0, n)
	cov1 := coverTT(c1, n)
	Lnew := (L0 &^ cov0) | (L1 &^ cov1)
	c2 := isop(Lnew, U0&U1, n)

	out := make([]cube, 0, len(c0)+len(c1)+len(c2))
	for _, c := range c0 {
		c.mask |= 1 << uint(v)
		// polarity negative: value bit stays 0
		out = append(out, c)
	}
	for _, c := range c1 {
		c.mask |= 1 << uint(v)
		c.value |= 1 << uint(v)
		out = append(out, c)
	}
	out = append(out, c2...)
	return out
}

// cubeTT returns the truth table of a cube over n variables.
func cubeTT(c cube, n int) uint64 {
	tt := aig.TTMask(n)
	for v := 0; v < n; v++ {
		if c.mask&(1<<uint(v)) == 0 {
			continue
		}
		if c.value&(1<<uint(v)) != 0 {
			tt &= varMask(v)
		} else {
			tt &= ^varMask(v)
		}
	}
	return tt & aig.TTMask(n)
}

// coverTT ORs together the cubes' tables.
func coverTT(cs []cube, n int) uint64 {
	var tt uint64
	for _, c := range cs {
		tt |= cubeTT(c, n)
	}
	return tt & aig.TTMask(n)
}

// buildSOP constructs OR-of-AND cubes over the leaf literals in g.
func buildSOP(g *aig.AIG, cs []cube, leaves []aig.Lit) aig.Lit {
	terms := make([]aig.Lit, 0, len(cs))
	for _, c := range cs {
		var lits []aig.Lit
		for v := 0; v < len(leaves); v++ {
			if c.mask&(1<<uint(v)) == 0 {
				continue
			}
			lits = append(lits, leaves[v].NotIf(c.value&(1<<uint(v)) == 0))
		}
		terms = append(terms, g.AndN(lits))
	}
	return g.OrN(terms)
}

// SynthTT builds an AIG implementation of truth table tt over the given
// leaf literals (n = len(leaves) ≤ 6) in graph g, returning the root
// literal. It synthesizes both the function and its complement via ISOP
// and keeps the cheaper form; the cost is measured on a scratch graph so
// the choice is deterministic and graph-independent.
func SynthTT(g *aig.AIG, tt uint64, leaves []aig.Lit) aig.Lit {
	n := len(leaves)
	mask := aig.TTMask(n)
	tt &= mask
	switch tt {
	case 0:
		return aig.False
	case mask:
		return aig.True
	}
	for v := 0; v < n; v++ {
		if tt == varMask(v)&mask {
			return leaves[v]
		}
		if tt == ^varMask(v)&mask {
			return leaves[v].Not()
		}
	}
	pos := isop(tt, tt, n)
	neg := isop(^tt&mask, ^tt&mask, n)
	if sopCost(pos, n) <= sopCost(neg, n) {
		return buildSOP(g, pos, leaves)
	}
	return buildSOP(g, neg, leaves).Not()
}

// sopCost estimates the AND-node count of a cube cover built on a scratch
// graph (capturing intra-cover sharing through structural hashing).
func sopCost(cs []cube, n int) int {
	scratch := aig.New()
	leaves := make([]aig.Lit, n)
	for i := range leaves {
		leaves[i] = scratch.AddInput("l")
	}
	buildSOP(scratch, cs, leaves)
	return scratch.NumAnds()
}

// EstimateTTCost returns the scratch-graph AND-node cost of implementing
// tt over n fresh leaves, as used by rewrite's gain computation.
func EstimateTTCost(tt uint64, n int) int {
	scratch := aig.New()
	leaves := make([]aig.Lit, n)
	for i := range leaves {
		leaves[i] = scratch.AddInput("l")
	}
	SynthTT(scratch, tt, leaves)
	return scratch.NumAnds()
}

// ttPopcount returns the number of minterms in tt over n variables.
func ttPopcount(tt uint64, n int) int {
	return bits.OnesCount64(tt & aig.TTMask(n))
}
