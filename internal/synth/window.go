package synth

import (
	"sort"

	"github.com/nyu-secml/almost/internal/aig"
)

// This file implements the windowed transform variants behind
// incremental candidate evaluation (PR 8). Where the whole-graph
// transforms rebuild the entire netlist through a Rebuilder, the
// windowed ones confine themselves to the dirty region of an append-only
// AIG — the nodes appended after an aig.Mark plus the outputs rewired
// since — and mutate in place: replacement logic is appended (so
// aig.Rollback undoes the whole pass) and dirty outputs are redirected
// with SetOutput. Clean nodes are read-only window leaves; no traversal,
// fanout count, or cut ever crosses the watermark, which is what makes a
// pass O(dirty region) instead of O(graph).
//
// Each windowed transform is its own deterministic specification: it is
// a pure function of the graph's content and the mark, so running it on
// the patched base in place and on a fresh clone of the same content
// yields bit-for-bit identical structures (the PR 8 identity invariant).
// It deliberately does NOT promise the same result as its whole-graph
// namesake — the whole-graph pass sees optimization opportunities across
// the clean region that a window, by design, must not touch.

// wUnmapped is the sentinel for "window node not (yet) replaced".
const wUnmapped = ^aig.Lit(0)

// winState bundles the per-pass view of the dirty region, backed by
// arena buffers that stay valid across the steps of a windowed recipe.
type winState struct {
	from  int   // watermark: node IDs >= from are dirty
	order []int // live dirty AND node IDs, ascending (topological)
	outs  []int // dirty output indices
}

// winPrep computes the live dirty region: AND nodes at or above the
// watermark reachable from the dirty outputs, in ascending (topological)
// ID order, plus region-local fanout counts. The substitution map is
// reset to unmapped.
func winPrep(g *aig.AIG, m aig.Mark, a *Arena) winState {
	from := m.Nodes()
	n := g.NumNodes()
	region := n - from

	a.wOuts = m.DirtyOutputsInto(g, a.wOuts)

	if cap(a.wLive) < region {
		a.wLive = make([]bool, region)
	}
	a.wLive = a.wLive[:region]
	for i := range a.wLive {
		a.wLive[i] = false
	}
	for _, oi := range a.wOuts {
		if id := g.Output(oi).Node(); id >= from {
			a.wLive[id-from] = true
		}
	}
	for id := n - 1; id >= from; id-- {
		if a.wLive[id-from] && g.IsAnd(id) {
			f0, f1 := g.Fanins(id)
			if f0.Node() >= from {
				a.wLive[f0.Node()-from] = true
			}
			if f1.Node() >= from {
				a.wLive[f1.Node()-from] = true
			}
		}
	}
	a.wOrder = a.wOrder[:0]
	for id := from; id < n; id++ {
		if a.wLive[id-from] && g.IsAnd(id) {
			a.wOrder = append(a.wOrder, id)
		}
	}

	// Region fanout counts: references to dirty nodes from every dirty
	// AND node (live or not, mirroring FanoutCounts) and from outputs.
	// Clean nodes cannot reference dirty ones (their IDs are smaller), so
	// these counts are complete.
	if cap(a.wFc) < region {
		a.wFc = make([]int, region)
	}
	a.wFc = a.wFc[:region]
	for i := range a.wFc {
		a.wFc[i] = 0
	}
	for id := from; id < n; id++ {
		if !g.IsAnd(id) {
			continue
		}
		f0, f1 := g.Fanins(id)
		if f0.Node() >= from {
			a.wFc[f0.Node()-from]++
		}
		if f1.Node() >= from {
			a.wFc[f1.Node()-from]++
		}
	}
	for i := 0; i < g.NumOutputs(); i++ {
		if id := g.Output(i).Node(); id >= from {
			a.wFc[id-from]++
		}
	}

	if cap(a.wMap) < region {
		a.wMap = make([]aig.Lit, region)
	}
	a.wMap = a.wMap[:region]
	for i := range a.wMap {
		a.wMap[i] = wUnmapped
	}

	return winState{from: from, order: a.wOrder, outs: a.wOuts}
}

// wlit maps a literal through the window substitution map.
func wlit(a *Arena, from int, l aig.Lit) aig.Lit {
	id := l.Node()
	if id >= from && a.wMap[id-from] != wUnmapped {
		return a.wMap[id-from].NotIf(l.Neg())
	}
	return l
}

// winFinish redirects the dirty outputs through the substitution map.
func winFinish(g *aig.AIG, a *Arena, w winState) {
	for _, oi := range w.outs {
		po := g.Output(oi)
		if nl := wlit(a, w.from, po); nl != po {
			g.SetOutput(oi, nl)
		}
	}
}

// RunWindow applies the transformation restricted to the dirty region of
// g relative to mark m, mutating g in place: replacement logic is
// appended and dirty outputs are redirected. Function is preserved
// exactly as in the whole-graph transforms. a supplies reusable scratch
// storage and may be nil. Cost is proportional to the dirty region, not
// the graph.
//
// The windowed resub variants (resub, resub -z) share one
// implementation: exact truth-table-based zero-resubstitution inside the
// window (no SAT oracle is consulted, so there is nothing for -z to
// relax).
func (s Step) RunWindow(g *aig.AIG, m aig.Mark, a *Arena) {
	a = ensure(a)
	switch s {
	case StepBalance:
		balanceWindow(g, m, a)
	case StepRewrite:
		rewriteWindow(g, m, false, a)
	case StepRewriteZ:
		rewriteWindow(g, m, true, a)
	case StepRefactor:
		refactorWindow(g, m, false, a)
	case StepRefactorZ:
		refactorWindow(g, m, true, a)
	case StepResub, StepResubZ:
		resubWindow(g, m, a)
	default:
		panic("synth: invalid step in RunWindow")
	}
}

// RunWindow applies the recipe left to right, each step windowed to the
// dirty region relative to m. The region naturally accretes the
// replacement logic of earlier steps (everything stays above the
// watermark), so later steps see and can further optimize it.
func (r Recipe) RunWindow(g *aig.AIG, m aig.Mark, a *Arena) {
	a = ensure(a)
	for _, s := range r {
		s.RunWindow(g, m, a)
	}
}

// balanceWindow is the windowed Balance: maximal single-fanout AND trees
// inside the dirty region are collapsed and re-associated pairing the
// two shallowest operands first. Tree absorption never crosses the
// watermark — a clean fanin is always a leaf.
func balanceWindow(g *aig.AIG, m aig.Mark, a *Arena) {
	w := winPrep(g, m, a)
	from := w.from

	region := g.NumNodes() - from
	if cap(a.wAbs) < region {
		a.wAbs = make([]bool, region)
	}
	abs := a.wAbs[:region]
	for i := range abs {
		abs[i] = false
	}
	for _, id := range w.order {
		f0, f1 := g.Fanins(id)
		for _, f := range [2]aig.Lit{f0, f1} {
			fid := f.Node()
			if !f.Neg() && fid >= from && g.IsAnd(fid) && a.wFc[fid-from] == 1 {
				abs[fid-from] = true
			}
		}
	}
	var conjuncts func(l aig.Lit, out []aig.Lit) []aig.Lit
	conjuncts = func(l aig.Lit, out []aig.Lit) []aig.Lit {
		if !l.Neg() && l.Node() >= from && g.IsAnd(l.Node()) && abs[l.Node()-from] {
			c0, c1 := g.Fanins(l.Node())
			out = conjuncts(c0, out)
			return conjuncts(c1, out)
		}
		return append(out, l)
	}
	for _, id := range w.order {
		if abs[id-from] {
			continue
		}
		f0, f1 := g.Fanins(id)
		lits := conjuncts(f0, a.conj[:0])
		lits = conjuncts(f1, lits)
		a.conj = lits
		if cap(a.dstLits) < len(lits) {
			a.dstLits = make([]aig.Lit, len(lits))
		}
		dst := a.dstLits[:len(lits)]
		for i, l := range lits {
			dst[i] = wlit(a, from, l)
		}
		a.wMap[id-from] = balancedAnd(g, dst)
	}
	winFinish(g, a, w)
}

// reconvWindowDirty grows a reconvergence-driven window rooted at id
// with at most limit leaves, exactly as reconvWindow but confined to the
// dirty region: only dirty AND nodes are expandable, so every interior
// node is dirty and clean boundary nodes are leaves.
func (a *Arena) reconvWindowDirty(g *aig.AIG, id, from, limit int) []int {
	f0, f1 := g.Fanins(id)
	leaves := append(a.winLeaves[:0], f0.Node(), f1.Node())
	if leaves[0] == leaves[1] {
		leaves = leaves[:1]
	}
	for {
		bestIdx, bestScore := -1, -1
		for i, l := range leaves {
			if l < from || !g.IsAnd(l) {
				continue
			}
			c0, c1 := g.Fanins(l)
			added := 0
			if !containsInt(leaves, c0.Node()) {
				added++
			}
			if c1.Node() != c0.Node() && !containsInt(leaves, c1.Node()) {
				added++
			}
			if len(leaves)-1+added > limit {
				continue
			}
			score := (2-added)*1000 + g.Level(l)
			if score > bestScore {
				bestScore, bestIdx = score, i
			}
		}
		if bestIdx < 0 {
			break
		}
		l := leaves[bestIdx]
		leaves = append(leaves[:bestIdx], leaves[bestIdx+1:]...)
		c0, c1 := g.Fanins(l)
		if !containsInt(leaves, c0.Node()) {
			leaves = append(leaves, c0.Node())
		}
		if !containsInt(leaves, c1.Node()) {
			leaves = append(leaves, c1.Node())
		}
	}
	sort.Ints(leaves)
	a.winLeaves = leaves
	return leaves
}

// savedWindow counts how many live dirty AND nodes die if root is
// reimplemented over the window leaves: the region-confined analogue of
// Arena.savedNodes, using the region fanout counts.
func (a *Arena) savedWindow(g *aig.AIG, root, from int, leaves []int) int {
	e := a.nextEpoch(g.NumNodes())

	a.stack = append(a.stack[:0], root)
	for len(a.stack) > 0 {
		id := a.stack[len(a.stack)-1]
		a.stack = a.stack[:len(a.stack)-1]
		if containsInt(leaves, id) || a.mark[id] == e || id < from || !g.IsAnd(id) {
			continue
		}
		a.mark[id] = e
		f0, f1 := g.Fanins(id)
		a.stack = append(a.stack, f0.Node(), f1.Node())
	}

	saved := 0
	if a.mark[root] == e {
		saved++
	}
	a.mffcMark[root] = e
	a.collectMFFCWindow(g, root, from, e, &saved)
	return saved
}

func (a *Arena) collectMFFCWindow(g *aig.AIG, id, from int, e int32, saved *int) {
	f0, f1 := g.Fanins(id)
	for _, f := range [2]aig.Lit{f0, f1} {
		fid := f.Node()
		if fid < from || !g.IsAnd(fid) {
			continue
		}
		if a.refEpoch[fid] != e {
			a.refEpoch[fid] = e
			a.ref[fid] = 0
		}
		a.ref[fid]++
		if int(a.ref[fid]) == a.wFc[fid-from] && a.mffcMark[fid] != e {
			a.mffcMark[fid] = e
			if a.mark[fid] == e {
				*saved++
			}
			a.collectMFFCWindow(g, fid, from, e, saved)
		}
	}
}

// resynthWindow is the shared body of rewriteWindow and refactorWindow:
// for every live dirty node grow a reconvergence window of at most limit
// leaves, and replace the node with the ISOP resynthesis of its window
// function when that saves dirty nodes (or is cost-neutral with
// zero=true).
func resynthWindow(g *aig.AIG, m aig.Mark, zero bool, limit int, a *Arena) {
	w := winPrep(g, m, a)
	from := w.from
	for _, id := range w.order {
		leaves := a.reconvWindowDirty(g, id, from, limit)
		replaced := false
		if len(leaves) >= 2 && len(leaves) <= 6 {
			if tt, ok := a.windowTT(g, id, leaves); ok {
				cost := a.ttPlanFor(tt, len(leaves)).cost
				gain := a.savedWindow(g, id, from, leaves) - cost
				if gain > 0 || (zero && gain == 0) {
					if cap(a.dstLits) < len(leaves) {
						a.dstLits = make([]aig.Lit, len(leaves))
					}
					leafLits := a.dstLits[:len(leaves)]
					for i, l := range leaves {
						leafLits[i] = wlit(a, from, aig.MakeLit(l, false))
					}
					a.wMap[id-from] = a.synthTT(g, tt, leafLits)
					replaced = true
				}
			}
		}
		if !replaced {
			f0, f1 := g.Fanins(id)
			nl := g.And(wlit(a, from, f0), wlit(a, from, f1))
			if nl != aig.MakeLit(id, false) {
				a.wMap[id-from] = nl
			}
		}
	}
	winFinish(g, a, w)
}

// rewriteWindow is the windowed Rewrite analogue. Cut enumeration over
// the whole graph would defeat locality, so it shares refactor's
// reconvergence-window machinery at rewrite's smaller leaf limit.
func rewriteWindow(g *aig.AIG, m aig.Mark, zero bool, a *Arena) {
	resynthWindow(g, m, zero, cutSize, a)
}

// refactorWindow is the windowed Refactor analogue.
func refactorWindow(g *aig.AIG, m aig.Mark, zero bool, a *Arena) {
	resynthWindow(g, m, zero, refactorLeafLimit, a)
}

// winEntry is one record in the windowed resub table: the truth table of
// a processed dirty node over its window leaves (stored in wLeafStore).
type winEntry struct {
	tt     uint64
	off, n int
	lit    aig.Lit // replacement literal of the recorded node
}

// resubWindow performs exact zero-resubstitution inside the dirty
// region: a dirty node whose window truth table (over an identical leaf
// set) matches an earlier dirty node's — up to complement — is merged
// into it. Equality of truth tables over identical leaves is exact
// functional equality, so no SAT proof is needed and no unproven merge
// can happen.
func resubWindow(g *aig.AIG, m aig.Mark, a *Arena) {
	w := winPrep(g, m, a)
	from := w.from
	a.wEnt = a.wEnt[:0]
	a.wLeafStore = a.wLeafStore[:0]
	for _, id := range w.order {
		leaves := a.reconvWindowDirty(g, id, from, refactorLeafLimit)
		merged := false
		if len(leaves) >= 1 && len(leaves) <= 6 {
			if tt, ok := a.windowTT(g, id, leaves); ok {
				mask := aig.TTMask(len(leaves))
				for _, e := range a.wEnt {
					if e.n != len(leaves) {
						continue
					}
					same := true
					for i, l := range leaves {
						if a.wLeafStore[e.off+i] != l {
							same = false
							break
						}
					}
					if !same {
						continue
					}
					if e.tt == tt {
						a.wMap[id-from] = e.lit
						merged = true
						break
					}
					if e.tt == ^tt&mask {
						a.wMap[id-from] = e.lit.Not()
						merged = true
						break
					}
				}
				if !merged {
					off := len(a.wLeafStore)
					a.wLeafStore = append(a.wLeafStore, leaves...)
					f0, f1 := g.Fanins(id)
					nl := g.And(wlit(a, from, f0), wlit(a, from, f1))
					if nl != aig.MakeLit(id, false) {
						a.wMap[id-from] = nl
					}
					a.wEnt = append(a.wEnt, winEntry{tt: tt, off: off, n: len(leaves), lit: wlit(a, from, aig.MakeLit(id, false))})
					continue
				}
			}
		}
		if !merged {
			f0, f1 := g.Fanins(id)
			nl := g.And(wlit(a, from, f0), wlit(a, from, f1))
			if nl != aig.MakeLit(id, false) {
				a.wMap[id-from] = nl
			}
		}
	}
	winFinish(g, a, w)
}
