package synth

import (
	"math/rand"
	"testing"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/cnf"
)

// patchKeyGates applies a deterministic key-gate patch to g (the
// incremental locking move the SA loop evaluates): XOR a fresh key input
// into a few AND nodes' fanout cones via RewriteCone.
func patchKeyGates(g *aig.AIG, seed int64, nKeys int) {
	rng := rand.New(rand.NewSource(seed))
	fanouts := g.Fanouts()
	var targets []int
	for id := 1; id < g.NumNodes() && len(targets) < nKeys; id++ {
		if g.IsAnd(id) && rng.Intn(3) == 0 {
			targets = append(targets, id)
		}
	}
	if len(targets) == 0 {
		panic("patchKeyGates: no targets")
	}
	keys := make([]aig.Lit, len(targets))
	for i := range keys {
		keys[i] = g.AddKeyInput("kw")
	}
	g.RewriteCone(targets, fanouts, func(i int, nl aig.Lit) aig.Lit {
		return g.Xor(nl, keys[i])
	})
}

// windowSteps lists every step once for the windowed tests.
func windowSteps() []Step { return AllSteps() }

// TestRunWindowPreservesFunction checks every windowed step against the
// pre-transform graph by random simulation: the dirty-region rewrite
// must not change any output function.
func TestRunWindowPreservesFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, s := range windowSteps() {
		g := randomAIG(rand.New(rand.NewSource(62)), 8, 4, 80)
		m := g.MarkClean()
		patchKeyGates(g, 63, 3)
		before := g.Clone()
		a := NewArena()
		s.RunWindow(g, m, a)
		if !aig.EquivalentBySim(before, g, rng, 32) {
			t.Fatalf("%v: windowed transform changed function", s)
		}
	}
}

// TestRunWindowPreservesFunctionExact proves function preservation with
// SAT on a small circuit, for every windowed step and a windowed recipe.
func TestRunWindowPreservesFunctionExact(t *testing.T) {
	build := func() *aig.AIG {
		g := randomAIG(rand.New(rand.NewSource(64)), 5, 3, 24)
		return g
	}
	check := func(name string, run func(g *aig.AIG, m aig.Mark)) {
		g := build()
		m := g.MarkClean()
		patchKeyGates(g, 65, 2)
		before := g.Clone()
		run(g, m)
		eq, cex, err := cnf.Equivalent(before, g)
		if err != nil {
			t.Fatalf("%s: equivalence check failed: %v", name, err)
		}
		if !eq {
			t.Fatalf("%s: windowed transform changed function, cex %v", name, cex)
		}
	}
	a := NewArena()
	for _, s := range windowSteps() {
		s := s
		check(s.String(), func(g *aig.AIG, m aig.Mark) { s.RunWindow(g, m, a) })
	}
	check("recipe", func(g *aig.AIG, m aig.Mark) { Resyn2().RunWindow(g, m, a) })
}

// TestRunWindowCloneTwinIdentity is the PR 8 bit-identity invariant at
// the synth layer: the same windowed recipe applied to the patched base
// in place and to a fresh clone of identical content must produce
// node-for-node identical graphs.
func TestRunWindowCloneTwinIdentity(t *testing.T) {
	g := randomAIG(rand.New(rand.NewSource(71)), 9, 5, 120)
	m := g.MarkClean()
	patchKeyGates(g, 72, 3)

	// A clone carries the same node layout, so the mark's watermark
	// counts describe identical content on the twin.
	twin := g.Clone()
	r := Recipe{StepBalance, StepRewrite, StepResub, StepRefactorZ, StepBalance}
	r.RunWindow(g, m, NewArena())
	r.RunWindow(twin, m, NewArena())
	if g.StructuralDigest() != twin.StructuralDigest() {
		t.Fatalf("windowed recipe diverged between in-place graph and clone twin")
	}

	// And it must be deterministic run-to-run with a shared (warm) arena.
	a := NewArena()
	var want uint64
	for i := 0; i < 3; i++ {
		h := twin.Clone()
		r.RunWindow(h, m, a)
		if i == 0 {
			want = h.StructuralDigest()
		} else if h.StructuralDigest() != want {
			t.Fatalf("windowed recipe not deterministic across arena reuse (run %d)", i)
		}
	}
}

// TestRunWindowRollbackRestoresBase pins the append-only contract: a
// windowed recipe only appends nodes and redirects outputs, so Rollback
// to the pre-patch mark must restore the base exactly.
func TestRunWindowRollbackRestoresBase(t *testing.T) {
	g := randomAIG(rand.New(rand.NewSource(81)), 8, 4, 90)
	base := g.StructuralDigest()
	m := g.MarkClean()
	for round := 0; round < 5; round++ {
		patchKeyGates(g, int64(82+round), 2)
		Resyn2().RunWindow(g, m, NewArena())
		g.Rollback(m)
		if g.StructuralDigest() != base {
			t.Fatalf("round %d: rollback after windowed recipe did not restore base", round)
		}
	}
}

// TestRunWindowCleanRegionNoOp checks that with an empty dirty region a
// windowed step changes nothing.
func TestRunWindowCleanRegionNoOp(t *testing.T) {
	g := randomAIG(rand.New(rand.NewSource(91)), 6, 3, 40)
	d := g.StructuralDigest()
	m := g.MarkClean()
	a := NewArena()
	for _, s := range windowSteps() {
		s.RunWindow(g, m, a)
		if g.StructuralDigest() != d {
			t.Fatalf("%v: windowed step mutated a clean graph", s)
		}
	}
}

// TestRunWindowReducesPatchLogic sanity-checks that the windowed
// transforms actually optimize: on a deliberately redundant patch the
// live dirty region must shrink.
func TestRunWindowReducesPatchLogic(t *testing.T) {
	g := randomAIG(rand.New(rand.NewSource(95)), 6, 2, 30)
	m := g.MarkClean()
	// Redundant patch: a chain with duplicated logic the optimizer can fold.
	x, y := g.Input(0), g.Input(1)
	a1 := g.And(x, y)
	a2 := g.And(a1, g.And(x, y.Not()))
	a3 := g.And(a2, a1.Not())
	dup := g.And(a3.Not(), g.And(a2, a1.Not()).Not())
	g.SetOutput(0, g.And(dup, a3.Not()))

	liveBefore := liveDirty(g, m)
	Resyn2().RunWindow(g, m, NewArena())
	liveAfter := liveDirty(g, m)
	if liveAfter > liveBefore {
		t.Fatalf("windowed recipe grew live dirty region: %d -> %d", liveBefore, liveAfter)
	}
}

// liveDirty counts live dirty AND nodes relative to the mark.
func liveDirty(g *aig.AIG, m aig.Mark) int {
	a := NewArena()
	w := winPrep(g, m, a)
	return len(w.order)
}
