// Package techmap maps AIGs onto a standard-cell library and reports
// power-performance-area (PPA) metrics. It stands in for the commercial
// flow the paper uses (Synopsys DC + NanGate 45 nm): Table III only needs
// overheads of ALMOST-synthesized netlists relative to a baseline mapped
// with the same tool, so a consistent tree-covering mapper with a
// NanGate45-flavored library preserves the comparison.
//
// The mapper covers the AIG with cell patterns (INV/BUF, AND2/NAND2,
// OR2/NOR2, XOR2/XNOR2, AOI21/OAI21) by dynamic programming over both
// output polarities of every node, minimizing area. Delay is computed by
// static timing over the chosen cover; power combines leakage with
// activity-weighted dynamic power, with switching activity estimated by
// random simulation.
package techmap

// Cell describes a library cell.
type Cell struct {
	Name    string
	Area    float64 // µm²
	Delay   float64 // ns, single pin-to-output figure
	Leakage float64 // nW
	InCap   float64 // normalized input capacitance (dynamic power weight)
}

// Library is a named set of cells.
type Library struct {
	Name string
	Inv, Buf,
	And2, Nand2,
	Or2, Nor2,
	Xor2, Xnor2,
	Aoi21, Oai21 Cell
}

// NanGate45 returns a library with area/delay/leakage figures modeled on
// the NanGate 45 nm Open Cell Library's X1 drive cells.
func NanGate45() *Library {
	return &Library{
		Name:  "nangate45-like",
		Inv:   Cell{"INV_X1", 0.532, 0.010, 1.7, 1.0},
		Buf:   Cell{"BUF_X1", 0.798, 0.022, 2.3, 1.1},
		And2:  Cell{"AND2_X1", 1.064, 0.022, 3.0, 1.2},
		Nand2: Cell{"NAND2_X1", 0.798, 0.013, 2.2, 1.2},
		Or2:   Cell{"OR2_X1", 1.064, 0.024, 3.1, 1.2},
		Nor2:  Cell{"NOR2_X1", 0.798, 0.017, 2.1, 1.2},
		Xor2:  Cell{"XOR2_X1", 1.596, 0.030, 4.5, 1.7},
		Xnor2: Cell{"XNOR2_X1", 1.596, 0.031, 4.6, 1.7},
		Aoi21: Cell{"AOI21_X1", 1.064, 0.019, 2.6, 1.3},
		Oai21: Cell{"OAI21_X1", 1.064, 0.020, 2.7, 1.3},
	}
}
