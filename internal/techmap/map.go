package techmap

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/synth"
)

// Effort selects the optimization level, mirroring the paper's Table III
// settings: -opt (no optimization) and +opt (ultra effort with area
// recovery).
type Effort int

// Efforts.
const (
	EffortNone Effort = iota // "-opt": map the netlist as-is
	EffortHigh               // "+opt": area-recovery synthesis before mapping
)

// Result reports the PPA of a mapped netlist.
type Result struct {
	Area     float64        // µm²
	Delay    float64        // ns, critical path
	Power    float64        // µW, leakage + dynamic at default activity
	Cells    map[string]int // cell name -> count
	NumGates int
}

// String gives a compact summary.
func (r Result) String() string {
	return fmt.Sprintf("area=%.2fµm² delay=%.3fns power=%.2fµW gates=%d",
		r.Area, r.Delay, r.Power, r.NumGates)
}

// match describes one way to implement a node polarity.
type match struct {
	cell *Cell
	// inputs are (source literal) pairs the cell consumes; each literal's
	// polarity selects which polarity cost of the source node is charged.
	inputs []aig.Lit
	valid  bool
}

// Map covers the AIG with library cells and returns the PPA result.
// Effort EffortHigh first runs an area-recovery pass (rewrite+balance) on
// the AIG, modeling DC's "ultra effort + area recovery". The pass shares
// one synthesis arena and recycles the intermediate netlist.
func Map(g *aig.AIG, lib *Library, effort Effort) Result {
	if effort == EffortHigh {
		a := synth.NewArena()
		rw := synth.Rewrite(g, false, a)
		g = synth.Balance(rw, a)
		a.Recycle(rw)
	}
	return mapDirect(g, lib)
}

func mapDirect(g *aig.AIG, lib *Library) Result {
	order := g.TopoOrder()
	n := g.NumNodes()

	// DP over (node, polarity): cost[2*id+p] = best area to produce node
	// id with polarity p (0 positive, 1 negated) at its driver.
	const inf = 1e18
	cost := make([]float64, 2*n)
	choice := make([]match, 2*n)
	for i := range cost {
		cost[i] = inf
	}
	// Constant and inputs are free at positive polarity; inverting them
	// costs an inverter.
	setLeaf := func(id int) {
		cost[2*id] = 0
		cost[2*id+1] = lib.Inv.Area
		choice[2*id+1] = match{cell: &lib.Inv, inputs: []aig.Lit{aig.MakeLit(id, false)}, valid: true}
	}
	setLeaf(0)
	for i := 0; i < g.NumInputs(); i++ {
		setLeaf(g.Input(i).Node())
	}

	litCost := func(l aig.Lit) float64 {
		idx := 2 * l.Node()
		if l.Neg() {
			idx++
		}
		return cost[idx]
	}

	for _, id := range order {
		f0, f1 := g.Fanins(id)
		cands := enumerateMatches(g, lib, id, f0, f1)
		for _, m := range cands {
			for pol := 0; pol < 2; pol++ {
				if m.pol != pol {
					continue
				}
				c := m.m.cell.Area
				ok := true
				for _, in := range m.m.inputs {
					ic := litCost(in)
					if ic >= inf {
						ok = false
						break
					}
					c += ic
				}
				if ok && c < cost[2*id+pol] {
					cost[2*id+pol] = c
					choice[2*id+pol] = m.m
				}
			}
		}
		// Fall back: derive the missing polarity with an inverter.
		for pol := 0; pol < 2; pol++ {
			other := 1 - pol
			c := cost[2*id+other] + lib.Inv.Area
			if c < cost[2*id+pol] {
				cost[2*id+pol] = c
				choice[2*id+pol] = match{cell: &lib.Inv, inputs: []aig.Lit{aig.MakeLit(id, other == 1)}, valid: true}
			}
		}
	}

	// Walk the cover from the outputs, instantiating cells.
	type instKey struct {
		id  int
		pol int
	}
	instantiated := map[instKey]bool{}
	cells := map[string]int{}
	arrival := map[instKey]float64{}
	activity := nodeActivity(g)
	var totalArea, totalLeak, totalDyn float64

	var build func(l aig.Lit) float64
	build = func(l aig.Lit) float64 {
		id := l.Node()
		pol := 0
		if l.Neg() {
			pol = 1
		}
		k := instKey{id, pol}
		if t, ok := arrival[k]; ok && instantiated[k] {
			return t
		}
		if (g.IsInput(id) || g.IsConst(id)) && pol == 0 {
			arrival[k] = 0
			instantiated[k] = true
			return 0
		}
		m := choice[2*id+pol]
		if !m.valid {
			panic(fmt.Sprintf("techmap: no match for node %d pol %d", id, pol))
		}
		// Guard against self-recursion through the inverter fallback.
		instantiated[k] = true
		worst := 0.0
		for _, in := range m.inputs {
			t := build(in)
			if t > worst {
				worst = t
			}
		}
		t := worst + m.cell.Delay
		arrival[k] = t
		cells[m.cell.Name]++
		totalArea += m.cell.Area
		totalLeak += m.cell.Leakage
		// Dynamic power: output toggle rate times input cap load proxy.
		totalDyn += activity[id] * m.cell.InCap * 10
		return t
	}

	var delay float64
	for i := 0; i < g.NumOutputs(); i++ {
		if t := build(g.Output(i)); t > delay {
			delay = t
		}
	}
	nGates := 0
	for _, c := range cells {
		nGates += c
	}
	return Result{
		Area:     totalArea,
		Delay:    delay,
		Power:    totalLeak/1000 + totalDyn/1000, // nW -> µW scaleish
		Cells:    cells,
		NumGates: nGates,
	}
}

type polMatch struct {
	m   match
	pol int
}

// enumerateMatches lists the cell patterns rooted at AND node id.
func enumerateMatches(g *aig.AIG, lib *Library, id int, f0, f1 aig.Lit) []polMatch {
	var out []polMatch
	add := func(pol int, cell *Cell, inputs ...aig.Lit) {
		out = append(out, polMatch{m: match{cell: cell, inputs: inputs, valid: true}, pol: pol})
	}
	// AND2 / NAND2 consume the fanin literals as-is.
	add(0, &lib.And2, f0, f1)
	add(1, &lib.Nand2, f0, f1)
	// NOR2/OR2: n = !a & !b.
	if f0.Neg() && f1.Neg() {
		add(0, &lib.Nor2, f0.Not(), f1.Not())
		add(1, &lib.Or2, f0.Not(), f1.Not())
	}
	// XNOR/XOR: n = !(a & !b) & !(!a & b)  (both fanins complemented ANDs
	// whose own fanins cross-match with opposite polarities).
	if f0.Neg() && f1.Neg() && g.IsAnd(f0.Node()) && g.IsAnd(f1.Node()) {
		a0, a1 := g.Fanins(f0.Node())
		b0, b1 := g.Fanins(f1.Node())
		if pa, pb, ok := xorOperands(a0, a1, b0, b1); ok {
			add(0, &lib.Xnor2, pa, pb)
			add(1, &lib.Xor2, pa, pb)
		}
	}
	// AOI21: n = !(a&b) & !c  -> n = !((a&b) | c), positive polarity.
	if f0.Neg() && g.IsAnd(f0.Node()) && f1.Neg() {
		a, b := g.Fanins(f0.Node())
		add(0, &lib.Aoi21, a, b, f1.Not())
	}
	if f1.Neg() && g.IsAnd(f1.Node()) && f0.Neg() {
		a, b := g.Fanins(f1.Node())
		add(0, &lib.Aoi21, a, b, f0.Not())
	}
	// OAI21: n = (a|b) & c = !And(!a,!b) & c -> !n = !((a|b)&c).
	if f0.Neg() && g.IsAnd(f0.Node()) {
		a, b := g.Fanins(f0.Node())
		if a.Neg() && b.Neg() {
			add(1, &lib.Oai21, a.Not(), b.Not(), f1)
		}
	}
	if f1.Neg() && g.IsAnd(f1.Node()) {
		a, b := g.Fanins(f1.Node())
		if a.Neg() && b.Neg() {
			add(1, &lib.Oai21, a.Not(), b.Not(), f0)
		}
	}
	return out
}

// xorOperands checks the cross-match condition for XOR detection: the
// pairs must be {x, !y} and {!x, y}. Returns the positive operand lits.
func xorOperands(a0, a1, b0, b1 aig.Lit) (aig.Lit, aig.Lit, bool) {
	// Try all pairings.
	if a0 == b0.Not() && a1 == b1.Not() {
		return aig.Lit(a0 &^ 1), aig.Lit(a1 &^ 1), true
	}
	if a0 == b1.Not() && a1 == b0.Not() {
		return aig.Lit(a0 &^ 1), aig.Lit(a1 &^ 1), true
	}
	return 0, 0, false
}

// nodeActivity estimates per-node switching activity 2p(1-p) from 1024
// random patterns (fixed seed: PPA reports must be deterministic). The
// signature rows alias the local sim scratch and never escape.
func nodeActivity(g *aig.AIG) []float64 {
	rng := rand.New(rand.NewSource(0xAC71))
	var sim aig.SimScratch
	sigs := g.SignaturesInto(&sim, rng, 16)
	act := make([]float64, g.NumNodes())
	for id := range act {
		if sigs[id] == nil {
			continue
		}
		ones := 0
		for _, w := range sigs[id] {
			for ; w != 0; w &= w - 1 {
				ones++
			}
		}
		p := float64(ones) / float64(16*64)
		act[id] = 2 * p * (1 - p)
	}
	return act
}

// CellReport renders the cell histogram sorted by name.
func (r Result) CellReport() string {
	names := make([]string, 0, len(r.Cells))
	for n := range r.Cells {
		names = append(names, n)
	}
	sort.Strings(names)
	s := ""
	for _, n := range names {
		s += fmt.Sprintf("%-10s %d\n", n, r.Cells[n])
	}
	return s
}

// Overhead returns the percentage overheads of r relative to base for
// area, delay, and power — the quantities Table III reports.
func Overhead(base, r Result) (areaPct, delayPct, powerPct float64) {
	pct := func(b, v float64) float64 {
		if b == 0 {
			return 0
		}
		return (v - b) / b * 100
	}
	return pct(base.Area, r.Area), pct(base.Delay, r.Delay), pct(base.Power, r.Power)
}
