package techmap

import (
	"testing"

	"github.com/nyu-secml/almost/internal/aig"
	"github.com/nyu-secml/almost/internal/circuits"
)

func TestMapSingleAnd(t *testing.T) {
	lib := NanGate45()
	g := aig.New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	g.AddOutput(g.And(a, b), "o")
	r := Map(g, lib, EffortNone)
	if r.Cells["AND2_X1"] != 1 || r.NumGates != 1 {
		t.Fatalf("cells = %v", r.Cells)
	}
	if r.Area != lib.And2.Area {
		t.Fatalf("area = %v", r.Area)
	}
	if r.Delay != lib.And2.Delay {
		t.Fatalf("delay = %v", r.Delay)
	}
}

func TestMapNandCheaperThanAndPlusInv(t *testing.T) {
	lib := NanGate45()
	g := aig.New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	g.AddOutput(g.And(a, b).Not(), "o")
	r := Map(g, lib, EffortNone)
	if r.Cells["NAND2_X1"] != 1 || len(r.Cells) != 1 {
		t.Fatalf("expected a single NAND2, got %v", r.Cells)
	}
}

func TestMapNorPattern(t *testing.T) {
	lib := NanGate45()
	g := aig.New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	g.AddOutput(g.Or(a, b).Not(), "o") // !(a|b) = !a & !b
	r := Map(g, lib, EffortNone)
	if r.Cells["NOR2_X1"] != 1 || len(r.Cells) != 1 {
		t.Fatalf("expected a single NOR2, got %v", r.Cells)
	}
}

func TestMapXorPattern(t *testing.T) {
	lib := NanGate45()
	g := aig.New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	g.AddOutput(g.Xor(a, b), "o")
	r := Map(g, lib, EffortNone)
	if r.Cells["XOR2_X1"] != 1 || len(r.Cells) != 1 {
		t.Fatalf("expected a single XOR2, got %v", r.Cells)
	}
	g2 := aig.New()
	a2 := g2.AddInput("a")
	b2 := g2.AddInput("b")
	g2.AddOutput(g2.Xnor(a2, b2), "o")
	r2 := Map(g2, lib, EffortNone)
	if r2.Cells["XNOR2_X1"] != 1 || len(r2.Cells) != 1 {
		t.Fatalf("expected a single XNOR2, got %v", r2.Cells)
	}
}

func TestMapAoi21Pattern(t *testing.T) {
	lib := NanGate45()
	g := aig.New()
	a := g.AddInput("a")
	b := g.AddInput("b")
	c := g.AddInput("c")
	// !((a&b) | c)
	g.AddOutput(g.Or(g.And(a, b), c).Not(), "o")
	r := Map(g, lib, EffortNone)
	if r.Cells["AOI21_X1"] != 1 || len(r.Cells) != 1 {
		t.Fatalf("expected a single AOI21, got %v", r.Cells)
	}
}

func TestMapInverterOnInput(t *testing.T) {
	lib := NanGate45()
	g := aig.New()
	a := g.AddInput("a")
	g.AddOutput(a.Not(), "o")
	r := Map(g, lib, EffortNone)
	if r.Cells["INV_X1"] != 1 || r.NumGates != 1 {
		t.Fatalf("cells = %v", r.Cells)
	}
}

func TestMapPassthroughFree(t *testing.T) {
	lib := NanGate45()
	g := aig.New()
	a := g.AddInput("a")
	g.AddOutput(a, "o")
	r := Map(g, lib, EffortNone)
	if r.NumGates != 0 || r.Area != 0 || r.Delay != 0 {
		t.Fatalf("passthrough not free: %v", r)
	}
}

func TestDelayIsCriticalPath(t *testing.T) {
	lib := NanGate45()
	g := aig.New()
	var ins []aig.Lit
	for i := 0; i < 8; i++ {
		ins = append(ins, g.AddInput("x"))
	}
	// Chain of 7 ANDs: delay ~= 7 * and2 delay.
	cur := ins[0]
	for _, l := range ins[1:] {
		cur = g.And(cur, l)
	}
	g.AddOutput(cur, "o")
	r := Map(g, lib, EffortNone)
	want := 7 * lib.And2.Delay
	if r.Delay < want-1e-9 || r.Delay > want+1e-9 {
		t.Fatalf("delay = %v, want %v", r.Delay, want)
	}
}

func TestEffortHighReducesOrMatchesArea(t *testing.T) {
	lib := NanGate45()
	g := circuits.MustGenerate("c880")
	r0 := Map(g, lib, EffortNone)
	r1 := Map(g, lib, EffortHigh)
	if r1.Area > r0.Area*1.05 {
		t.Fatalf("+opt area %v much larger than -opt %v", r1.Area, r0.Area)
	}
}

func TestMapDeterministic(t *testing.T) {
	lib := NanGate45()
	g := circuits.MustGenerate("c499")
	r1 := Map(g, lib, EffortNone)
	r2 := Map(g, lib, EffortNone)
	if r1.Area != r2.Area || r1.Delay != r2.Delay || r1.Power != r2.Power {
		t.Fatalf("nondeterministic mapping: %v vs %v", r1, r2)
	}
}

func TestMapBenchmarksProducePlausiblePPA(t *testing.T) {
	lib := NanGate45()
	for _, name := range []string{"c432", "c1908", "c6288"} {
		g := circuits.MustGenerate(name)
		r := Map(g, lib, EffortNone)
		if r.Area <= 0 || r.Delay <= 0 || r.Power <= 0 {
			t.Errorf("%s: degenerate PPA %v", name, r)
		}
		if r.NumGates < g.NumAnds()/3 {
			t.Errorf("%s: suspiciously few gates %d for %d ANDs", name, r.NumGates, g.NumAnds())
		}
	}
}

func TestOverhead(t *testing.T) {
	base := Result{Area: 100, Delay: 2, Power: 50}
	r := Result{Area: 103, Delay: 1.8, Power: 55}
	a, d, p := Overhead(base, r)
	if a < 2.99 || a > 3.01 {
		t.Errorf("area overhead = %v", a)
	}
	if d > -9.99 && d < -10.01 {
		t.Errorf("delay overhead = %v", d)
	}
	if p < 9.99 || p > 10.01 {
		t.Errorf("power overhead = %v", p)
	}
	// Zero base must not divide by zero.
	a, d, p = Overhead(Result{}, r)
	if a != 0 || d != 0 || p != 0 {
		t.Errorf("zero base overheads: %v %v %v", a, d, p)
	}
}

func TestCellReportListsCells(t *testing.T) {
	lib := NanGate45()
	g := circuits.MustGenerate("c432")
	r := Map(g, lib, EffortNone)
	rep := r.CellReport()
	if rep == "" {
		t.Fatal("empty cell report")
	}
}

func BenchmarkMapC6288(b *testing.B) {
	lib := NanGate45()
	g := circuits.MustGenerate("c6288")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Map(g, lib, EffortNone)
	}
}
